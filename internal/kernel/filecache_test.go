package kernel

import (
	"fmt"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestFileCacheHitAndMiss(t *testing.T) {
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	var firstAt, secondAt sim.Time
	if hit := fc.Read("/a", 4096, c, c, func() { firstAt = eng.Now() }); hit {
		t.Fatal("cold cache reported a hit")
	}
	eng.Run()
	if firstAt == 0 {
		t.Fatal("miss never completed")
	}
	if !fc.Contains("/a") {
		t.Fatal("document not inserted after miss")
	}
	if hit := fc.Read("/a", 4096, c, c, func() { secondAt = eng.Now() }); !hit {
		t.Fatal("warm cache reported a miss")
	}
	if secondAt != eng.Now() {
		t.Fatal("hit should complete immediately")
	}
	h, m, _ := fc.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d", h, m)
	}
	if c.Usage().Memory != 4096 {
		t.Fatalf("cache memory charge %d", c.Usage().Memory)
	}
}

func TestFileCacheGlobalLRUEviction(t *testing.T) {
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	fc.SetCapacity(3 * 1024)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	for i := 0; i < 3; i++ {
		fc.Read(fmt.Sprintf("/doc%d", i), 1024, c, c, nil)
		eng.Run()
	}
	// Touch /doc0 so /doc1 is the LRU victim.
	fc.Read("/doc0", 1024, c, c, nil)
	fc.Read("/doc3", 1024, c, c, nil)
	eng.Run()
	if fc.Contains("/doc1") {
		t.Fatal("LRU victim not evicted")
	}
	if !fc.Contains("/doc0") || !fc.Contains("/doc3") {
		t.Fatal("wrong eviction victim")
	}
	if fc.Used() != 3*1024 {
		t.Fatalf("used %d", fc.Used())
	}
	_, _, ev := fc.Stats()
	if ev != 1 {
		t.Fatalf("evictions %d", ev)
	}
	if c.Usage().Memory != 3*1024 {
		t.Fatalf("memory charge %d after eviction", c.Usage().Memory)
	}
}

func TestFileCacheQuotaSelfEviction(t *testing.T) {
	// Guest A has a 2 KB cache quota; its scan evicts its own documents
	// and never touches guest B's.
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	guestA := rc.MustNew(nil, rc.FixedShare, "A", rc.Attributes{MemLimit: 2 * 1024})
	aLeaf := rc.MustNew(guestA, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	guestB := rc.MustNew(nil, rc.FixedShare, "B", rc.Attributes{})
	bLeaf := rc.MustNew(guestB, rc.TimeShare, "b", rc.Attributes{Priority: 1})

	fc.Read("/b/hot", 1024, bLeaf, bLeaf, nil)
	eng.Run()
	for i := 0; i < 5; i++ {
		fc.Read(fmt.Sprintf("/a/doc%d", i), 1024, aLeaf, aLeaf, nil)
		eng.Run()
	}
	if !fc.Contains("/b/hot") {
		t.Fatal("guest A's scan evicted guest B's document")
	}
	if guestA.Usage().Memory > 2*1024 {
		t.Fatalf("guest A over quota: %d", guestA.Usage().Memory)
	}
	// A's most recent two documents fit its quota.
	if !fc.Contains("/a/doc4") || !fc.Contains("/a/doc3") {
		t.Fatal("guest A should keep its most recent documents")
	}
	if fc.Contains("/a/doc0") {
		t.Fatal("guest A's oldest document should be gone")
	}
}

func TestFileCacheQuotaTooSmallServesUncached(t *testing.T) {
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	tiny := rc.MustNew(nil, rc.FixedShare, "tiny", rc.Attributes{MemLimit: 512})
	leaf := rc.MustNew(tiny, rc.TimeShare, "l", rc.Attributes{Priority: 1})
	done := false
	fc.Read("/big", 4096, leaf, leaf, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if fc.Contains("/big") {
		t.Fatal("document cached beyond its subtree quota")
	}
	if tiny.Usage().Memory != 0 {
		t.Fatalf("quota charge leaked: %d", tiny.Usage().Memory)
	}
}

func TestFileCacheUncacheableDocument(t *testing.T) {
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	fc.SetCapacity(1024)
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	done := false
	fc.Read("/huge", 4096, c, c, func() { done = true })
	eng.Run()
	if !done || fc.Contains("/huge") {
		t.Fatalf("huge document handling: done=%v cached=%v", done, fc.Contains("/huge"))
	}
}

func TestFileCacheSetCapacityShrink(t *testing.T) {
	eng, k := newKernel(ModeRC)
	fc := k.FileCache()
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	for i := 0; i < 4; i++ {
		fc.Read(fmt.Sprintf("/d%d", i), 1024, c, c, nil)
		eng.Run()
	}
	fc.SetCapacity(2 * 1024)
	if fc.Used() > 2*1024 {
		t.Fatalf("used %d after shrink", fc.Used())
	}
	if c.Usage().Memory != fc.Used() {
		t.Fatalf("charge %d != used %d", c.Usage().Memory, fc.Used())
	}
}

func TestFileCacheServerIntegration(t *testing.T) {
	// End-to-end: repeated requests for the same document hit the cache
	// (fast), a scan of distinct documents misses (slow).
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	th := p.NewThread("t")
	var conn *Conn
	_, _ = k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { conn, _ = l.Accept() },
	})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.RunUntil(sim.Time(sim.Millisecond))
	if conn == nil {
		t.Fatal("no conn")
	}
	served := 0
	for i := 0; i < 3; i++ {
		k.FileCache().Read("/hot", 1024, conn.Container(), p.DefaultContainer, func() {
			th.PostFunc("serve", 10*sim.Microsecond, rc.UserCPU, conn.Container(), func() { served++ })
		})
		eng.Run()
	}
	if served != 3 {
		t.Fatalf("served %d", served)
	}
	h, m, _ := k.FileCache().Stats()
	if m != 1 || h != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", h, m)
	}
}
