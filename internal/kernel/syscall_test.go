package kernel

import (
	"errors"
	"testing"

	"rescon/internal/rc"
)

func rcProc(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	_, k := newKernel(ModeRC)
	return k, k.NewProcess("app")
}

func TestCreateContainerSyscall(t *testing.T) {
	_, p := rcProc(t)
	d, err := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Lookup(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "c" || c.Refs() != 1 {
		t.Fatalf("container state: %v refs=%d", c, c.Refs())
	}
}

func TestCreateContainerWithParentDesc(t *testing.T) {
	_, p := rcProc(t)
	pd, err := p.CreateContainer(NoParent, rc.FixedShare, "parent", rc.Attributes{Limit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := p.CreateContainer(pd, rc.TimeShare, "child", rc.Attributes{Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	parent, _ := p.Lookup(pd)
	child, _ := p.Lookup(cd)
	if child.Parent() != parent {
		t.Fatal("parent not set")
	}
}

func TestCreateContainerBadParent(t *testing.T) {
	_, p := rcProc(t)
	if _, err := p.CreateContainer(rc.Desc(42), rc.TimeShare, "c", rc.Attributes{}); !errors.Is(err, rc.ErrBadDescriptor) {
		t.Fatalf("want ErrBadDescriptor, got %v", err)
	}
}

func TestReleaseContainerDestroys(t *testing.T) {
	_, p := rcProc(t)
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{})
	c, _ := p.Lookup(d)
	if err := p.ReleaseContainer(d); err != nil {
		t.Fatal(err)
	}
	if !c.Destroyed() {
		t.Fatal("container should be destroyed after last descriptor closes")
	}
	if err := p.ReleaseContainer(d); !errors.Is(err, rc.ErrBadDescriptor) {
		t.Fatalf("double release: %v", err)
	}
}

func TestSetContainerParentSyscall(t *testing.T) {
	_, p := rcProc(t)
	pd, _ := p.CreateContainer(NoParent, rc.FixedShare, "parent", rc.Attributes{})
	cd, _ := p.CreateContainer(NoParent, rc.TimeShare, "child", rc.Attributes{})
	if err := p.SetContainerParent(cd, pd); err != nil {
		t.Fatal(err)
	}
	child, _ := p.Lookup(cd)
	parent, _ := p.Lookup(pd)
	if child.Parent() != parent {
		t.Fatal("SetContainerParent failed")
	}
	// "No parent" detaches (§4.6).
	if err := p.SetContainerParent(cd, NoParent); err != nil {
		t.Fatal(err)
	}
	if child.Parent() != nil {
		t.Fatal("NoParent did not detach")
	}
}

func TestContainerAttrsSyscalls(t *testing.T) {
	_, p := rcProc(t)
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{Priority: 3})
	got, err := p.ContainerAttrs(d)
	if err != nil || got.Priority != 3 {
		t.Fatalf("attrs %v err %v", got, err)
	}
	got.Priority = 9
	if err := p.SetContainerAttrs(d, got); err != nil {
		t.Fatal(err)
	}
	got2, _ := p.ContainerAttrs(d)
	if got2.Priority != 9 {
		t.Fatal("attrs not updated")
	}
	if err := p.SetContainerAttrs(d, rc.Attributes{Priority: -1}); !errors.Is(err, rc.ErrBadAttributes) {
		t.Fatalf("bad attrs: %v", err)
	}
}

func TestContainerUsageSyscall(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{Priority: 5})
	c, _ := p.Lookup(d)
	th := p.NewThread("t")
	th.PostFunc("w", 3*1000*1000, rc.UserCPU, c, nil) // 3 ms
	eng.Run()
	u, err := p.ContainerUsage(d)
	if err != nil {
		t.Fatal(err)
	}
	if u.CPUUser != 3*1000*1000 {
		t.Fatalf("usage %v", u.CPUUser)
	}
}

func TestMoveContainerSyscall(t *testing.T) {
	k, p := rcProc(t)
	p2 := k.NewProcess("other")
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{})
	nd, err := p.MoveContainer(d, p2)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := p.Lookup(d)
	c2, err := p2.Lookup(nd)
	if err != nil || c1 != c2 {
		t.Fatal("moved container not shared")
	}
	// Sender retains access; refcount covers both descriptors.
	if c1.Refs() != 2 {
		t.Fatalf("refs %d, want 2", c1.Refs())
	}
	// Moving to an exited process fails.
	p3 := k.NewProcess("dead")
	p3.Exit()
	if _, err := p.MoveContainer(d, p3); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("move to exited process: %v", err)
	}
}

func TestContainerHandleSyscall(t *testing.T) {
	_, p := rcProc(t)
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{})
	c, _ := p.Lookup(d)
	h, err := p.ContainerHandle(c)
	if err != nil {
		t.Fatal(err)
	}
	if h == d {
		t.Fatal("handle should be a fresh descriptor")
	}
	if c.Refs() != 2 {
		t.Fatalf("refs %d", c.Refs())
	}
}

func TestBindThreadSyscall(t *testing.T) {
	k, p := rcProc(t)
	th := p.NewThread("t")
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	if err := p.BindThread(th, d); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Lookup(d)
	if p.ThreadBinding(th) != c {
		t.Fatal("thread binding not set")
	}
	// Binding to a non-leaf container is rejected (§4.5).
	pd, _ := p.CreateContainer(NoParent, rc.FixedShare, "parent", rc.Attributes{})
	if _, err := p.CreateContainer(pd, rc.TimeShare, "kid", rc.Attributes{}); err != nil {
		t.Fatal(err)
	}
	if err := p.BindThread(th, pd); !errors.Is(err, rc.ErrNotLeaf) {
		t.Fatalf("bind to non-leaf: %v", err)
	}
	_ = k
}

func TestResetSchedBindingSyscall(t *testing.T) {
	_, p := rcProc(t)
	th := p.NewThread("t")
	d1, _ := p.CreateContainer(NoParent, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	d2, _ := p.CreateContainer(NoParent, rc.TimeShare, "b", rc.Attributes{Priority: 1})
	_ = p.BindThread(th, d1)
	_ = p.BindThread(th, d2)
	if len(th.Entity().Binding()) < 2 {
		t.Fatal("scheduler binding should hold both")
	}
	p.ResetSchedBinding(th)
	bs := th.Entity().Binding()
	c2, _ := p.Lookup(d2)
	if len(bs) != 1 || bs[0] != c2 {
		t.Fatalf("reset binding: %v", bs)
	}
}

func TestBindConnAndListenSocketSyscalls(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	var conn *Conn
	ls, err := k.Listen(p, ListenConfig{
		Local:        srvAddr,
		OnAcceptable: func(l *ListenSocket) { conn, _ = l.Accept() },
	})
	if err != nil {
		t.Fatal(err)
	}
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.Run()
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{Priority: 7})
	c, _ := p.Lookup(d)
	if err := p.BindConn(conn, d); err != nil {
		t.Fatal(err)
	}
	if conn.Container() != c {
		t.Fatal("conn binding failed")
	}
	if err := p.BindListenSocket(ls, d); err != nil {
		t.Fatal(err)
	}
	if ls.Container() != c {
		t.Fatal("listen socket binding failed")
	}
}

func TestSyscallsRequireRCMode(t *testing.T) {
	_, k := newKernel(ModeUnmodified)
	p := k.NewProcess("app")
	if _, err := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{}); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("want ErrWrongMode, got %v", err)
	}
	if err := p.ReleaseContainer(0); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("want ErrWrongMode, got %v", err)
	}
	if _, err := p.ContainerUsage(0); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("want ErrWrongMode, got %v", err)
	}
}

func TestSyscallsOnExitedProcess(t *testing.T) {
	_, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	p.Exit()
	if _, err := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{}); !errors.Is(err, ErrProcessExited) {
		t.Fatalf("want ErrProcessExited, got %v", err)
	}
}

func TestForkInheritsDescriptors(t *testing.T) {
	_, p := rcProc(t)
	d, _ := p.CreateContainer(NoParent, rc.TimeShare, "c", rc.Attributes{})
	child, err := p.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := child.Lookup(d)
	if err != nil {
		t.Fatal("child did not inherit descriptor")
	}
	pc, _ := p.Lookup(d)
	if cc != pc {
		t.Fatal("inherited descriptor names a different container")
	}
	// Child default container is the parent's (inherited binding, §4.2).
	if child.DefaultContainer != p.DefaultContainer {
		t.Fatal("child default container not inherited")
	}
}
