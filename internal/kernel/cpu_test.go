package kernel

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestQuantumSlicing(t *testing.T) {
	// A long item is executed in quantum-sized slices, so scheduling
	// decisions interleave two threads finely.
	eng, k := newKernel(ModeUnmodified)
	pa := k.NewProcess("a")
	pb := k.NewProcess("b")
	var doneA, doneB sim.Time
	pa.NewThread("t").PostFunc("wa", 10*sim.Millisecond, rc.UserCPU, nil, func() { doneA = eng.Now() })
	pb.NewThread("t").PostFunc("wb", 10*sim.Millisecond, rc.UserCPU, nil, func() { doneB = eng.Now() })
	eng.Run()
	// Interleaved at 1 ms quanta: both finish around 19–20 ms, not one at
	// 10 ms and the other at 20 ms.
	if doneA < sim.Time(18*sim.Millisecond) || doneB < sim.Time(18*sim.Millisecond) {
		t.Fatalf("no interleaving: %v / %v", doneA, doneB)
	}
}

func TestIdleClassPreemption(t *testing.T) {
	// Background (priority-0) work is evicted the instant normal work
	// arrives, not at the next quantum boundary.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	bg := rc.MustNew(nil, rc.TimeShare, "bg", rc.Attributes{Priority: 0})
	fg := rc.MustNew(nil, rc.TimeShare, "fg", rc.Attributes{Priority: 10})
	bgThread := p.NewThread("bg")
	fgThread := p.NewThread("fg")
	// The application dedicates the background thread to the idle-class
	// container and resets its scheduler binding (§4.6), so it carries no
	// residual standing from the process default container.
	if err := p.BindThreadContainer(bgThread, bg); err != nil {
		t.Fatal(err)
	}
	p.ResetSchedBinding(bgThread)
	bgThread.PostFunc("background", 10*sim.Millisecond, rc.UserCPU, bg, nil)
	var fgDone sim.Time
	eng.After(250*sim.Microsecond, func() {
		fgThread.PostFunc("urgent", 100*sim.Microsecond, rc.UserCPU, fg, func() { fgDone = eng.Now() })
	})
	eng.Run()
	// Without eviction the urgent work would wait for the 1 ms quantum
	// boundary (done at ~1.1 ms); with eviction it finishes at ~350 µs.
	if fgDone != sim.Time(350*sim.Microsecond) {
		t.Fatalf("urgent work done at %v, want 350µs (immediate eviction)", fgDone)
	}
}

func TestIdleClassResumesAfterEviction(t *testing.T) {
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	bg := rc.MustNew(nil, rc.TimeShare, "bg", rc.Attributes{Priority: 0})
	fg := rc.MustNew(nil, rc.TimeShare, "fg", rc.Attributes{Priority: 10})
	bgThread := p.NewThread("bg")
	fgThread := p.NewThread("fg")
	if err := p.BindThreadContainer(bgThread, bg); err != nil {
		t.Fatal(err)
	}
	p.ResetSchedBinding(bgThread)
	var bgDone sim.Time
	bgThread.PostFunc("background", sim.Millisecond, rc.UserCPU, bg, func() { bgDone = eng.Now() })
	eng.After(200*sim.Microsecond, func() {
		fgThread.PostFunc("urgent", 300*sim.Microsecond, rc.UserCPU, fg, nil)
	})
	eng.Run()
	// bg: 200µs before eviction + 800µs after urgent's 300µs = 1.3ms.
	if bgDone != sim.Time(1300*sim.Microsecond) {
		t.Fatalf("background done at %v, want 1.3ms", bgDone)
	}
	if bg.Usage().CPU() != sim.Millisecond {
		t.Fatalf("background charged %v, want exactly its work", bg.Usage().CPU())
	}
}

func TestCapThrottleAndRetry(t *testing.T) {
	// A capped container exhausts its window budget, the CPU idles, and
	// the retry timer resumes work at the next window.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	var done sim.Time
	p.NewThread("t").PostFunc("w", 50*sim.Millisecond, rc.UserCPU, leaf, func() { done = eng.Now() })
	eng.Run()
	// 50 ms of work at a 50% cap (10 ms budget per 20 ms window): the
	// fifth window's budget completes the job at 80+10 = 90 ms.
	if done < sim.Time(88*sim.Millisecond) || done > sim.Time(100*sim.Millisecond) {
		t.Fatalf("capped work done at %v, want ~90ms", done)
	}
}

func TestInterruptDuringInterrupt(t *testing.T) {
	// Interrupts arriving while interrupt work is in progress queue FIFO
	// and extend the busy period.
	eng, k := newKernel(ModeUnmodified)
	var order []int
	eng.After(0, func() {
		k.cpu.RaiseInterrupt(&intrWork{cost: 100 * sim.Microsecond, onDone: func() { order = append(order, 1) }})
	})
	eng.After(50*sim.Microsecond, func() {
		k.cpu.RaiseInterrupt(&intrWork{cost: 100 * sim.Microsecond, onDone: func() { order = append(order, 2) }})
	})
	eng.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
	if k.InterruptTime() != 200*sim.Microsecond {
		t.Fatalf("interrupt time %v", k.InterruptTime())
	}
	if eng.Now() != sim.Time(200*sim.Microsecond) {
		t.Fatalf("clock %v, want back-to-back interrupts ending at 200µs", eng.Now())
	}
}

func TestRCChargesInterruptDemuxToContainer(t *testing.T) {
	// In ModeRC, demultiplexing cost is charged to the destination
	// container's kernel CPU even though it runs at interrupt level.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("httpd")
	cont := rc.MustNew(nil, rc.TimeShare, "sock", rc.Attributes{Priority: 5})
	_, _ = k.Listen(p, ListenConfig{Local: srvAddr, Container: cont})
	k.ClientSend(SYNPacket(client(1), srvAddr, false))
	eng.Run()
	u := cont.Usage()
	want := k.Costs().Demux + k.Costs().SYNProtocol
	if u.CPUKernel != want {
		t.Fatalf("container kernel CPU %v, want demux+SYN = %v", u.CPUKernel, want)
	}
	if u.PacketsIn != 1 {
		t.Fatalf("packets in %d", u.PacketsIn)
	}
}

func TestSliceBudgetIntegration(t *testing.T) {
	// With a capped container and an uncapped one, slices are clipped so
	// the cap holds almost exactly even at fine windows.
	eng, k := newKernel(ModeRC)
	p := k.NewProcess("app")
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.1})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "free", rc.Attributes{Priority: 1})
	p.NewThread("c").PostFunc("w", 100*sim.Second, rc.UserCPU, leaf, nil)
	p.NewThread("f").PostFunc("w", 100*sim.Second, rc.UserCPU, free, nil)
	eng.RunUntil(sim.Time(10 * sim.Second))
	share := capped.Usage().CPU().Seconds() / 10
	if share < 0.095 || share > 0.105 {
		t.Fatalf("capped share %.4f, want 0.100±0.005", share)
	}
}

func TestProcessCPUTimeExcludesInterrupts(t *testing.T) {
	eng, k := newKernel(ModeUnmodified)
	p := k.NewProcess("app")
	p.NewThread("t").PostFunc("w", sim.Millisecond, rc.UserCPU, nil, nil)
	eng.After(100*sim.Microsecond, func() {
		k.cpu.RaiseInterrupt(&intrWork{cost: 500 * sim.Microsecond, chargePreempted: true})
	})
	eng.Run()
	if p.CPUTime() != sim.Millisecond {
		t.Fatalf("process CPU %v includes interrupt time", p.CPUTime())
	}
	if k.InterruptTime() != 500*sim.Microsecond {
		t.Fatalf("interrupt time %v", k.InterruptTime())
	}
}
