package fault

import (
	"fmt"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// QueueState is one bounded queue's instantaneous state, reported by a
// queue source. Bound <= 0 means the queue is unbounded and only
// non-negativity is checked.
type QueueState struct {
	Name  string
	Len   int
	Bound int
}

// Checker is a runtime invariant checker for fault-injection runs: it
// verifies that the simulation's accounting stays consistent while faults
// push the system into rarely exercised paths. Experiments enable it to
// fail fast on drift instead of silently producing wrong curves.
//
// Invariants checked:
//
//  1. Virtual-clock monotonicity: the engine's clock and fired-event
//     count never move backwards between checks (event-heap ordering).
//  2. CPU-charge conservation: charges propagate from a container to all
//     ancestors, so within every watched hierarchy each parent's CPU
//     usage must be at least the sum of its children's. (Reparenting a
//     container after it has been charged breaks this bookkeeping; watch
//     hierarchies only where reparenting happens before work starts, as
//     the experiments do.)
//  3. Non-negative usage: CPU and memory charged to any watched
//     container never go negative.
//  4. Queue bounds: every watched bounded queue's length stays within
//     its bound (sources add slack where PushFront's documented
//     capacity bypass applies).
type Checker struct {
	eng *sim.Engine

	// FailFast makes a violation panic immediately with the violation
	// text, which fails the enclosing test or experiment on the exact
	// event that corrupted state. Default true.
	FailFast bool

	contSrcs  []func() []*rc.Container
	queueSrcs []func() []QueueState
	checkSrcs []namedCheck

	lastNow   sim.Time
	lastFired uint64

	checks     uint64
	violations []string
	ticker     *sim.Ticker
}

// NewChecker returns a fail-fast checker bound to the engine.
func NewChecker(eng *sim.Engine) *Checker {
	return &Checker{eng: eng, FailFast: true, lastNow: eng.Now(), lastFired: eng.Fired()}
}

// WatchContainers adds fixed container hierarchies to the watch set. Each
// container's root subtree is checked, so passing any member of a
// hierarchy watches the whole tree.
func (ch *Checker) WatchContainers(cs ...*rc.Container) {
	fixed := append([]*rc.Container(nil), cs...)
	ch.WatchContainerSource(func() []*rc.Container { return fixed })
}

// WatchContainerSource adds a dynamic container source, re-evaluated at
// every check — use it for hierarchies that appear during the run (e.g.
// per-connection containers under a kernel's processes).
func (ch *Checker) WatchContainerSource(fn func() []*rc.Container) {
	ch.contSrcs = append(ch.contSrcs, fn)
}

// WatchQueue adds one bounded queue with a fixed bound (<= 0 checks only
// non-negativity).
func (ch *Checker) WatchQueue(name string, length func() int, bound int) {
	ch.WatchQueueSource(func() []QueueState {
		return []QueueState{{Name: name, Len: length(), Bound: bound}}
	})
}

// WatchQueueSource adds a dynamic queue source, re-evaluated every check.
func (ch *Checker) WatchQueueSource(fn func() []QueueState) {
	ch.queueSrcs = append(ch.queueSrcs, fn)
}

// namedCheck is one custom invariant: fn returns "" while the invariant
// holds, or a description of the violation.
type namedCheck struct {
	name string
	fn   func() string
}

// WatchCheck adds a named custom invariant, evaluated at every check
// alongside the built-in ones. The function returns "" while the
// invariant holds and a violation description otherwise; the name
// prefixes the recorded violation so consumers (e.g. the chaos harness's
// shrinker) can classify failures. Checks run in registration order.
// A duplicate name is rejected with an error — silently overwriting (or
// shadowing) an existing invariant would make the earlier registration
// unreportable, which is exactly the failure mode a checker exists to
// prevent.
func (ch *Checker) WatchCheck(name string, fn func() string) error {
	if name == "" {
		return fmt.Errorf("fault: WatchCheck with empty name")
	}
	if fn == nil {
		return fmt.Errorf("fault: WatchCheck %q with nil function", name)
	}
	for _, nc := range ch.checkSrcs {
		if nc.name == name {
			return fmt.Errorf("fault: duplicate check name %q", name)
		}
	}
	ch.checkSrcs = append(ch.checkSrcs, namedCheck{name: name, fn: fn})
	return nil
}

// MustWatchCheck is WatchCheck that panics on error, for call sites
// whose names are unique by construction.
func (ch *Checker) MustWatchCheck(name string, fn func() string) {
	if err := ch.WatchCheck(name, fn); err != nil {
		panic(err)
	}
}

// Start checks periodically until Stop. A period of 0 defaults to 10 ms
// of virtual time — fine enough to localize drift, coarse enough to be
// cheap.
func (ch *Checker) Start(period sim.Duration) {
	if period <= 0 {
		period = 10 * sim.Millisecond
	}
	ch.Stop()
	ch.ticker = ch.eng.Every(period, ch.Check)
}

// Stop cancels periodic checking.
func (ch *Checker) Stop() {
	if ch.ticker != nil {
		ch.ticker.Stop()
		ch.ticker = nil
	}
}

// Checks returns how many times Check has run.
func (ch *Checker) Checks() uint64 { return ch.checks }

// Violations returns the violations recorded so far (only reachable with
// FailFast disabled).
func (ch *Checker) Violations() []string { return ch.violations }

func (ch *Checker) violate(format string, args ...any) {
	v := fmt.Sprintf("fault: invariant violated at %v: %s", ch.eng.Now(), fmt.Sprintf(format, args...))
	if ch.FailFast {
		panic(v)
	}
	ch.violations = append(ch.violations, v)
}

// Check runs every invariant once, against the current state.
func (ch *Checker) Check() {
	ch.checks++

	// 1. Clock monotonicity.
	if now := ch.eng.Now(); now < ch.lastNow {
		ch.violate("clock moved backwards: %v -> %v", ch.lastNow, now)
	} else {
		ch.lastNow = now
	}
	if fired := ch.eng.Fired(); fired < ch.lastFired {
		ch.violate("fired-event count decreased: %d -> %d", ch.lastFired, fired)
	} else {
		ch.lastFired = fired
	}

	// 2 & 3. Container hierarchy accounting. Roots are deduped so shared
	// hierarchies are walked once per check.
	seen := make(map[*rc.Container]bool)
	for _, src := range ch.contSrcs {
		for _, c := range src() {
			if c == nil || c.Destroyed() {
				continue
			}
			root := c.Root()
			if seen[root] {
				continue
			}
			seen[root] = true
			ch.checkSubtree(root)
		}
	}

	// 4. Queue bounds.
	for _, src := range ch.queueSrcs {
		for _, q := range src() {
			if q.Len < 0 {
				ch.violate("queue %q has negative length %d", q.Name, q.Len)
			}
			if q.Bound > 0 && q.Len > q.Bound {
				ch.violate("queue %q over bound: %d > %d", q.Name, q.Len, q.Bound)
			}
		}
	}

	// 5. Custom invariants (WatchCheck), in registration order.
	for _, nc := range ch.checkSrcs {
		if msg := nc.fn(); msg != "" {
			ch.violate("%s: %s", nc.name, msg)
		}
	}
}

func (ch *Checker) checkSubtree(c *rc.Container) {
	u := c.Usage()
	if u.CPUUser < 0 || u.CPUKernel < 0 {
		ch.violate("container %v has negative CPU usage (user=%v kernel=%v)", c, u.CPUUser, u.CPUKernel)
	}
	if u.Memory < 0 {
		ch.violate("container %v has negative memory %d", c, u.Memory)
	}
	kids := c.Children()
	if len(kids) > 0 {
		var kidCPU sim.Duration
		for _, k := range kids {
			kidCPU += k.Usage().CPU()
		}
		if own := u.CPU(); own < kidCPU {
			ch.violate("CPU conservation broken at %v: parent %v < children sum %v", c, own, kidCPU)
		}
	}
	for _, k := range kids {
		ch.checkSubtree(k)
	}
}
