// Package fault is the deterministic fault-injection and resilience
// layer for the simulated server. The paper's core claim is that resource
// containers keep a server well-behaved under hostile and degraded
// conditions (overload in §5.2, SYN floods in §5.7); this package makes
// those conditions reproducible inputs rather than happy-path omissions:
//
//   - Injector decides the fate of every client-injected packet (drop,
//     duplicate, reorder, delay) and of every disk read (media error,
//     latency spike), from RNG streams forked off the engine seed — one
//     stream per fault class, so enabling disk faults never perturbs the
//     packet-fault schedule.
//   - Checker (check.go) is a runtime invariant checker — CPU-charge
//     conservation across the container hierarchy, virtual-clock
//     monotonicity, queue-length bounds — that experiments enable to
//     fail fast on accounting drift.
//   - Crasher (crash.go) schedules deterministic crash-and-restart
//     cycles for server processes.
//
// The package depends only on internal/sim, internal/netsim and
// internal/rc; the kernel consumes Injector through small structural
// interfaces, so no import cycle arises.
package fault

import (
	"fmt"

	"rescon/internal/netsim"
	"rescon/internal/sim"
)

// Config sets the per-class fault probabilities. Zero values mean the
// class is disabled and its RNG stream is never consulted.
type Config struct {
	// DropRate is the probability that a client-injected packet is lost
	// on the wire.
	DropRate float64
	// DupRate is the probability that a packet is delivered twice (the
	// duplicate arrives DupDelay later).
	DupRate float64
	// DupDelay separates a duplicate from its original. Default 100 µs.
	DupDelay sim.Duration
	// ReorderRate is the probability that a packet is held back by
	// ReorderDelay, letting later-sent packets overtake it.
	ReorderRate float64
	// ReorderDelay is how long a reordered packet is held. Default 200 µs
	// (several wire delays, enough to invert ordering).
	ReorderDelay sim.Duration
	// DelayRate is the probability that a packet suffers an extra queueing
	// delay, uniform in (0, DelayMax].
	DelayRate float64
	// DelayMax bounds injected packet delay. Default 1 ms.
	DelayMax sim.Duration

	// DiskErrorRate is the probability that a disk read fails with a
	// media error after the head has moved (the seek time is still paid).
	DiskErrorRate float64
	// DiskSlowRate is the probability that a disk read suffers a latency
	// spike, uniform in (0, DiskSlowMax] — a remapped sector or a
	// thermal-recalibration stall.
	DiskSlowRate float64
	// DiskSlowMax bounds the injected disk latency spike. Default 50 ms.
	DiskSlowMax sim.Duration
}

func (c Config) withDefaults() Config {
	if c.DupDelay <= 0 {
		c.DupDelay = 100 * sim.Microsecond
	}
	if c.ReorderDelay <= 0 {
		c.ReorderDelay = 200 * sim.Microsecond
	}
	if c.DelayMax <= 0 {
		c.DelayMax = sim.Millisecond
	}
	if c.DiskSlowMax <= 0 {
		c.DiskSlowMax = 50 * sim.Millisecond
	}
	return c
}

// Stats counts injected faults. All counts are deterministic functions of
// the engine seed and the traffic, so two runs with the same seed must
// produce identical Stats — the property the resilience experiments
// regression-test.
type Stats struct {
	WireDrops    uint64
	WireDups     uint64
	WireReorders uint64
	WireDelays   uint64
	DiskErrors   uint64
	DiskSlows    uint64
}

// Injector implements the fault schedule. It satisfies the kernel's
// WireFaults and DiskFaults interfaces structurally.
type Injector struct {
	cfg Config

	dropRNG    *sim.RNG
	dupRNG     *sim.RNG
	reorderRNG *sim.RNG
	delayRNG   *sim.RNG
	diskRNG    *sim.RNG

	stats Stats
}

// RNG fork labels, one per fault class. Fixed constants keep the streams
// stable across runs and across code changes that add new classes.
const (
	labelDrop    = 0xFA17D401
	labelDup     = 0xFA17D402
	labelReorder = 0xFA17D403
	labelDelay   = 0xFA17D404
	labelDisk    = 0xFA17D405
)

// NewInjector builds an injector whose schedule is a deterministic
// function of the engine's seed and cfg.
func NewInjector(eng *sim.Engine, cfg Config) *Injector {
	r := eng.Rand()
	return &Injector{
		cfg:        cfg.withDefaults(),
		dropRNG:    r.Fork(labelDrop),
		dupRNG:     r.Fork(labelDup),
		reorderRNG: r.Fork(labelReorder),
		delayRNG:   r.Fork(labelDelay),
		diskRNG:    r.Fork(labelDisk),
	}
}

// Stats returns the fault counts so far.
func (f *Injector) Stats() Stats { return f.stats }

// Config returns the injector's fault configuration.
func (f *Injector) Config() Config { return f.cfg }

// WireFate decides the fate of one client-injected packet: the returned
// slice holds one extra delay (beyond the normal wire delay) per delivery.
// nil means the packet is lost; {0} is a clean delivery; {0, d} delivers a
// duplicate d later; {d} alone is a delayed (possibly reordered) delivery.
//
// Each fault class draws from its own RNG stream, and only when its rate
// is non-zero, so the schedule of one class is independent of the others.
func (f *Injector) WireFate(pkt *netsim.Packet) []sim.Duration {
	if f.cfg.DropRate > 0 && f.dropRNG.Float64() < f.cfg.DropRate {
		f.stats.WireDrops++
		return nil
	}
	extra := sim.Duration(0)
	if f.cfg.ReorderRate > 0 && f.reorderRNG.Float64() < f.cfg.ReorderRate {
		f.stats.WireReorders++
		extra += f.cfg.ReorderDelay
	}
	if f.cfg.DelayRate > 0 && f.delayRNG.Float64() < f.cfg.DelayRate {
		f.stats.WireDelays++
		extra += f.delayRNG.Uniform(1, f.cfg.DelayMax)
	}
	if f.cfg.DupRate > 0 && f.dupRNG.Float64() < f.cfg.DupRate {
		f.stats.WireDups++
		return []sim.Duration{extra, extra + f.cfg.DupDelay}
	}
	return []sim.Duration{extra}
}

// DiskFate decides the fate of one disk read: fail reports a media error
// (the request's data never arrives), extra is an injected latency spike
// added to the mechanical service time.
func (f *Injector) DiskFate(bytes int) (fail bool, extra sim.Duration) {
	if f.cfg.DiskErrorRate > 0 && f.diskRNG.Float64() < f.cfg.DiskErrorRate {
		f.stats.DiskErrors++
		return true, 0
	}
	if f.cfg.DiskSlowRate > 0 && f.diskRNG.Float64() < f.cfg.DiskSlowRate {
		f.stats.DiskSlows++
		return false, f.diskRNG.Uniform(1, f.cfg.DiskSlowMax)
	}
	return false, 0
}

// String summarizes the fault counts.
func (s Stats) String() string {
	return fmt.Sprintf("drops=%d dups=%d reorders=%d delays=%d diskErr=%d diskSlow=%d",
		s.WireDrops, s.WireDups, s.WireReorders, s.WireDelays, s.DiskErrors, s.DiskSlows)
}
