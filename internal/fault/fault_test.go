package fault

import (
	"testing"

	"rescon/internal/netsim"
	"rescon/internal/sim"
)

func testPacket() *netsim.Packet {
	return &netsim.Packet{Kind: netsim.Data, Size: 512}
}

// collectFates draws n wire fates and returns them flattened alongside
// the final stats.
func collectFates(seed int64, cfg Config, n int) ([][]sim.Duration, Stats) {
	eng := sim.NewEngine(seed)
	inj := NewInjector(eng, cfg)
	out := make([][]sim.Duration, n)
	for i := range out {
		out[i] = inj.WireFate(testPacket())
	}
	return out, inj.Stats()
}

func TestWireFateCleanByDefault(t *testing.T) {
	fates, stats := collectFates(1, Config{}, 1000)
	for i, f := range fates {
		if len(f) != 1 || f[0] != 0 {
			t.Fatalf("fate %d = %v, want clean delivery {0}", i, f)
		}
	}
	if stats != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}

func TestWireFateDropAll(t *testing.T) {
	fates, stats := collectFates(1, Config{DropRate: 1}, 100)
	for i, f := range fates {
		if f != nil {
			t.Fatalf("fate %d = %v, want lost (nil)", i, f)
		}
	}
	if stats.WireDrops != 100 {
		t.Fatalf("drops = %d, want 100", stats.WireDrops)
	}
}

func TestWireFateDuplicates(t *testing.T) {
	fates, stats := collectFates(1, Config{DupRate: 1}, 50)
	for i, f := range fates {
		if len(f) != 2 {
			t.Fatalf("fate %d = %v, want two deliveries", i, f)
		}
		if f[1]-f[0] != 100*sim.Microsecond {
			t.Fatalf("fate %d duplicate spacing = %v, want default 100µs", i, f[1]-f[0])
		}
	}
	if stats.WireDups != 50 {
		t.Fatalf("dups = %d, want 50", stats.WireDups)
	}
}

func TestWireFateDelayBounded(t *testing.T) {
	cfg := Config{DelayRate: 1, DelayMax: 2 * sim.Millisecond}
	fates, stats := collectFates(3, cfg, 200)
	for i, f := range fates {
		if len(f) != 1 {
			t.Fatalf("fate %d = %v, want one delivery", i, f)
		}
		if f[0] <= 0 || f[0] > 2*sim.Millisecond {
			t.Fatalf("fate %d delay = %v, want in (0, 2ms]", i, f[0])
		}
	}
	if stats.WireDelays != 200 {
		t.Fatalf("delays = %d, want 200", stats.WireDelays)
	}
}

func TestWireFateReorderHoldsPacket(t *testing.T) {
	cfg := Config{ReorderRate: 1}
	fates, _ := collectFates(5, cfg, 10)
	for i, f := range fates {
		if len(f) != 1 || f[0] != 200*sim.Microsecond {
			t.Fatalf("fate %d = %v, want held by default 200µs", i, f)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, DelayRate: 0.3}
	a, sa := collectFates(42, cfg, 5000)
	b, sb := collectFates(42, cfg, 5000)
	if sa != sb {
		t.Fatalf("stats differ across identical runs:\n%v\n%v", sa, sb)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("fate %d differs: %v vs %v", i, a[i], b[i])
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("fate %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestClassIndependence is the stream-stability property: enabling the
// disk fault class must not perturb the wire-fault schedule, because each
// class draws from its own forked stream.
func TestClassIndependence(t *testing.T) {
	wire := Config{DropRate: 0.2, DupRate: 0.1, DelayRate: 0.3}
	both := wire
	both.DiskErrorRate = 0.5
	both.DiskSlowRate = 0.3

	eng1 := sim.NewEngine(7)
	eng2 := sim.NewEngine(7)
	i1 := NewInjector(eng1, wire)
	i2 := NewInjector(eng2, both)
	for n := 0; n < 2000; n++ {
		a := i1.WireFate(testPacket())
		b := i2.WireFate(testPacket())
		if len(a) != len(b) {
			t.Fatalf("packet %d: wire fate changed when disk faults enabled: %v vs %v", n, a, b)
		}
		// Interleave disk draws on the second injector to stress stream
		// separation.
		i2.DiskFate(4096)
	}
	s1, s2 := i1.Stats(), i2.Stats()
	if s1.WireDrops != s2.WireDrops || s1.WireDups != s2.WireDups || s1.WireDelays != s2.WireDelays {
		t.Fatalf("wire stats perturbed by disk class: %v vs %v", s1, s2)
	}
}

func TestDiskFateDeterminism(t *testing.T) {
	cfg := Config{DiskErrorRate: 0.1, DiskSlowRate: 0.2, DiskSlowMax: 10 * sim.Millisecond}
	run := func() (uint64, uint64, sim.Duration) {
		eng := sim.NewEngine(99)
		inj := NewInjector(eng, cfg)
		var total sim.Duration
		for i := 0; i < 3000; i++ {
			fail, extra := inj.DiskFate(8192)
			if fail && extra != 0 {
				t.Fatal("failed read must not also carry a latency spike")
			}
			if extra < 0 || extra > 10*sim.Millisecond {
				t.Fatalf("spike %v out of range", extra)
			}
			total += extra
		}
		s := inj.Stats()
		return s.DiskErrors, s.DiskSlows, total
	}
	e1, s1, t1 := run()
	e2, s2, t2 := run()
	if e1 != e2 || s1 != s2 || t1 != t2 {
		t.Fatalf("disk schedule not deterministic: (%d,%d,%v) vs (%d,%d,%v)", e1, s1, t1, e2, s2, t2)
	}
	if e1 == 0 || s1 == 0 {
		t.Fatalf("expected both fault kinds to fire: errors=%d slows=%d", e1, s1)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{WireDrops: 1, DiskErrors: 2}
	got := s.String()
	if got != "drops=1 dups=0 reorders=0 delays=0 diskErr=2 diskSlow=0" {
		t.Fatalf("String() = %q", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.DupDelay != 100*sim.Microsecond || c.ReorderDelay != 200*sim.Microsecond ||
		c.DelayMax != sim.Millisecond || c.DiskSlowMax != 50*sim.Millisecond {
		t.Fatalf("defaults = %+v", c)
	}
}
