// Live fault injection: the package's deterministic fault schedules
// applied to a *real* net/http server instead of the simulated wire.
// LiveInjector wraps a net.Listener (connection resets, stalled reads)
// and an http.Handler (handler stalls, handler panics) so the rcruntime
// bridge can be driven through hostile conditions reproducibly — the
// livechaos experiment's chaos source.
//
// Determinism over real sockets requires two disciplines, both owned
// here. First, every fault decision is drawn when the unit of work
// arrives (one draw per class per accepted connection, one per served
// request), never inside Read — the kernel is free to segment a stream
// into any number of Read calls, and a draw per Read would make the
// schedule depend on TCP timing. Second, stalls sleep on an injected
// Sleeper (the runtime's Clock), so under a virtual clock a "stalled"
// read or handler advances simulated time instead of burning wall-clock.
// Drivers that issue requests sequentially (the livechaos closed loop)
// therefore see an identical fault schedule on every run with the same
// seed.

package fault

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"rescon/internal/sim"
)

// Live RNG fork labels, continuing the wire/disk label block. One
// stream per fault class: enabling panics never perturbs the reset
// schedule.
const (
	labelLiveReset  = 0xFA17D406
	labelLiveStall  = 0xFA17D407
	labelLiveHStall = 0xFA17D408
	labelLivePanic  = 0xFA17D409
)

// Live fault-duration defaults.
const (
	// DefaultLiveStallFor is the injected pre-read connection stall.
	DefaultLiveStallFor = 5 * time.Millisecond
	// DefaultLiveHandlerStallFor is the injected handler stall.
	DefaultLiveHandlerStallFor = 20 * time.Millisecond
)

// ErrInjectedReset is the error a connection's Read returns when the
// injector resets it (the live analogue of a client RST mid-request).
var ErrInjectedReset = errors.New("fault: injected connection reset")

// injectedPanic is the value injected handler panics carry; the
// middleware above recovers it like any other handler panic.
const injectedPanic = "fault: injected handler panic"

// Sleeper is the injected time source stalls sleep on — satisfied by
// rcruntime's Clock, so virtual-time drivers stall in virtual time.
type Sleeper interface {
	Sleep(d time.Duration)
}

type realSleeper struct{}

func (realSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// LiveConfig sets the per-class live fault probabilities. Zero rates
// disable a class; its RNG stream is never consulted.
type LiveConfig struct {
	// ResetRate is the probability an accepted connection is reset (its
	// first Read fails with ErrInjectedReset) before the request is read.
	ResetRate float64
	// StallRate is the probability an accepted connection's first Read is
	// preceded by a StallFor sleep on the injector's Sleeper.
	StallRate float64
	// StallFor is the injected pre-read stall. Default 5 ms.
	StallFor time.Duration
	// HandlerStallRate is the probability a request's handler is preceded
	// by a HandlerStallFor sleep — a runaway request, charged to whatever
	// container the request is bound to.
	HandlerStallRate float64
	// HandlerStallFor is the injected handler stall. Default 20 ms.
	HandlerStallFor time.Duration
	// PanicRate is the probability a request's handler panics instead of
	// running (recovered, and still charged, by rcruntime.Middleware).
	PanicRate float64
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.StallFor <= 0 {
		c.StallFor = DefaultLiveStallFor
	}
	if c.HandlerStallFor <= 0 {
		c.HandlerStallFor = DefaultLiveHandlerStallFor
	}
	return c
}

// LiveStats counts injected live faults. With a sequential driver the
// counts are a deterministic function of (seed, traffic) — the property
// the livechaos -check gate asserts.
type LiveStats struct {
	ConnResets    uint64
	ReadStalls    uint64
	HandlerStalls uint64
	HandlerPanics uint64
}

// String summarizes the live fault counts.
func (s LiveStats) String() string {
	return fmt.Sprintf("resets=%d readStalls=%d handlerStalls=%d panics=%d",
		s.ConnResets, s.ReadStalls, s.HandlerStalls, s.HandlerPanics)
}

// LiveInjector injects faults into a real server: wrap the listener
// with Listener and the handler with Middleware. Safe for concurrent
// use; for a byte-identical schedule across runs, drive the server from
// a sequential (closed-loop) client.
type LiveInjector struct {
	cfg   LiveConfig
	sleep Sleeper

	mu        sync.Mutex
	resetRNG  *sim.RNG
	stallRNG  *sim.RNG
	hstallRNG *sim.RNG
	panicRNG  *sim.RNG
	stats     LiveStats
}

// NewLive builds a live injector whose schedule is a deterministic
// function of seed and cfg. sleeper nil means wall-clock stalls.
func NewLive(seed int64, cfg LiveConfig, sleeper Sleeper) *LiveInjector {
	if sleeper == nil {
		sleeper = realSleeper{}
	}
	r := sim.NewRNG(seed)
	return &LiveInjector{
		cfg:       cfg.withDefaults(),
		sleep:     sleeper,
		resetRNG:  r.Fork(labelLiveReset),
		stallRNG:  r.Fork(labelLiveStall),
		hstallRNG: r.Fork(labelLiveHStall),
		panicRNG:  r.Fork(labelLivePanic),
	}
}

// Stats returns the live fault counts so far.
func (f *LiveInjector) Stats() LiveStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Config returns the injector's fault configuration.
func (f *LiveInjector) Config() LiveConfig { return f.cfg }

// connFate draws one accepted connection's fate: whether its first Read
// is reset, and any stall preceding it. All draws happen here, at
// accept time, so the schedule is independent of how the kernel chunks
// the stream into Read calls.
func (f *LiveInjector) connFate() (reset bool, stall time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.ResetRate > 0 && f.resetRNG.Float64() < f.cfg.ResetRate {
		f.stats.ConnResets++
		reset = true
	}
	if f.cfg.StallRate > 0 && f.stallRNG.Float64() < f.cfg.StallRate {
		f.stats.ReadStalls++
		stall = f.cfg.StallFor
	}
	return reset, stall
}

// requestFate draws one request's fate: an injected handler stall
// and/or an injected panic.
func (f *LiveInjector) requestFate() (stall time.Duration, panics bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.HandlerStallRate > 0 && f.hstallRNG.Float64() < f.cfg.HandlerStallRate {
		f.stats.HandlerStalls++
		stall = f.cfg.HandlerStallFor
	}
	if f.cfg.PanicRate > 0 && f.panicRNG.Float64() < f.cfg.PanicRate {
		f.stats.HandlerPanics++
		panics = true
	}
	return stall, panics
}

// Listener wraps ln so each accepted connection carries its drawn
// fault fate. Layer it *under* the runtime's policed listener —
// rt.Listener(f.Listener(ln)) — so every connection the policy sees has
// its fate drawn in accept order, before the policy can refuse it; that
// keeps the draw sequence independent of the policy's decisions.
func (f *LiveInjector) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, f: f}
}

type faultListener struct {
	net.Listener
	f *LiveInjector
}

// Accept implements net.Listener, attaching the drawn fate to each
// connection.
func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	reset, stall := l.f.connFate()
	if !reset && stall == 0 {
		return conn, nil
	}
	return &faultConn{Conn: conn, f: l.f, reset: reset, stall: stall}, nil
}

// faultConn applies a connection's predetermined fate on its first
// Read. The fate fields are touched only by the connection's serving
// goroutine (net/http reads a connection from one goroutine at a time).
type faultConn struct {
	net.Conn
	f     *LiveInjector
	reset bool
	stall time.Duration
}

// Read implements net.Conn, applying the injected stall and/or reset
// before the first real read.
func (c *faultConn) Read(p []byte) (int, error) {
	if c.stall > 0 {
		d := c.stall
		c.stall = 0
		c.f.sleep.Sleep(d)
	}
	if c.reset {
		c.reset = false
		_ = c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// Middleware wraps next with the handler fault classes: injected stalls
// (slept on the Sleeper, so they charge the bound container under
// rcruntime) and injected panics. Layer it *inside*
// rcruntime.Middleware — rt.Middleware(f.Middleware(mux)) — so panics
// are recovered and the stall's wall-clock is billed like any other
// handler work.
func (f *LiveInjector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stall, panics := f.requestFate()
		if stall > 0 {
			f.sleep.Sleep(stall)
		}
		if panics {
			panic(injectedPanic)
		}
		next.ServeHTTP(w, r)
	})
}
