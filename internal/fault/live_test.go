package fault

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// countSleeper records virtual sleeps instead of burning wall-clock.
type countSleeper struct {
	mu    sync.Mutex
	total time.Duration
	calls int
}

func (s *countSleeper) Sleep(d time.Duration) {
	s.mu.Lock()
	s.total += d
	s.calls++
	s.mu.Unlock()
}

func TestLiveDeterministicSchedule(t *testing.T) {
	cfg := LiveConfig{ResetRate: 0.3, StallRate: 0.2, HandlerStallRate: 0.25, PanicRate: 0.1}
	draw := func(seed int64) ([]bool, []bool) {
		f := NewLive(seed, cfg, &countSleeper{})
		resets := make([]bool, 64)
		panics := make([]bool, 64)
		for i := range resets {
			resets[i], _ = f.connFate()
			_, panics[i] = f.requestFate()
		}
		return resets, panics
	}
	r1, p1 := draw(42)
	r2, p2 := draw(42)
	for i := range r1 {
		if r1[i] != r2[i] || p1[i] != p2[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	r3, _ := draw(43)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical reset schedules")
	}
}

func TestLiveStreamsIndependent(t *testing.T) {
	// Enabling panics must not perturb the reset schedule: per-class
	// forked RNG streams.
	drawResets := func(cfg LiveConfig) []bool {
		f := NewLive(7, cfg, &countSleeper{})
		out := make([]bool, 64)
		for i := range out {
			out[i], _ = f.connFate()
			f.requestFate()
		}
		return out
	}
	a := drawResets(LiveConfig{ResetRate: 0.3})
	b := drawResets(LiveConfig{ResetRate: 0.3, PanicRate: 0.9, HandlerStallRate: 0.9, StallRate: 0.9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reset schedule perturbed by other classes at draw %d", i)
		}
	}
}

func TestLiveZeroConfigIsTransparent(t *testing.T) {
	f := NewLive(1, LiveConfig{}, nil)
	for i := 0; i < 100; i++ {
		if reset, stall := f.connFate(); reset || stall != 0 {
			t.Fatalf("zero config injected a connection fault")
		}
		if stall, panics := f.requestFate(); panics || stall != 0 {
			t.Fatalf("zero config injected a request fault")
		}
	}
	if s := f.Stats(); s != (LiveStats{}) {
		t.Fatalf("zero config counted faults: %v", s)
	}
}

func TestLiveConnReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// ResetRate 1: every accepted connection's first read fails.
	f := NewLive(3, LiveConfig{ResetRate: 1}, &countSleeper{})
	fl := f.Listener(ln)

	done := make(chan error, 1)
	go func() {
		conn, err := fl.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Read(make([]byte, 1))
		done <- err
	}()

	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("server read error = %v, want ErrInjectedReset", err)
	}
	if got := f.Stats().ConnResets; got != 1 {
		t.Fatalf("ConnResets = %d, want 1", got)
	}
}

func TestLiveMiddlewareStallAndPanic(t *testing.T) {
	sl := &countSleeper{}
	f := NewLive(5, LiveConfig{HandlerStallRate: 1, HandlerStallFor: 7 * time.Millisecond}, sl)
	h := f.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Body.String() != "ok" {
		t.Fatalf("body = %q", rec.Body.String())
	}
	if sl.total != 7*time.Millisecond {
		t.Fatalf("stall slept %v on the injected Sleeper, want 7ms", sl.total)
	}

	fp := NewLive(5, LiveConfig{PanicRate: 1}, sl)
	hp := fp.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer func() {
		if recover() == nil {
			t.Fatalf("injected panic did not propagate")
		}
	}()
	hp.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}
