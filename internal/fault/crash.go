package fault

import (
	"errors"

	"rescon/internal/sim"
)

// ErrCrashPlan is returned by StartCrasher for an unusable crash plan
// (non-positive MTBF).
var ErrCrashPlan = errors.New("fault: CrashPlan.MTBF must be positive")

// CrashPlan configures deterministic crash-and-restart cycles for a
// server worker: the worker stays up for an exponentially distributed
// interval with mean MTBF, crashes, and is restarted after a fixed
// Downtime — the classic fail-stop-and-recover model.
type CrashPlan struct {
	// MTBF is the mean time between crashes. Required.
	MTBF sim.Duration
	// Downtime is how long the worker stays down before restart.
	// Default 100 ms.
	Downtime sim.Duration
}

const labelCrash = 0xFA17C8A5

// Crasher drives one worker's crash schedule. The crash times come from
// an RNG stream forked off the engine seed, so the schedule is byte-
// identical across runs with the same seed.
type Crasher struct {
	eng      *sim.Engine
	rng      *sim.RNG
	plan     CrashPlan
	crash    func()
	restart  func()
	crashes  uint64
	restarts uint64
	stopped  bool
	down     bool
}

// StartCrasher begins the crash schedule: after each up-interval the
// crash callback runs (tear the worker down), and Downtime later the
// restart callback runs (bring a fresh worker up). A plan without a
// positive MTBF is a configuration error, reported as ErrCrashPlan
// rather than a panic so harnesses that randomize plans surface it as a
// finding.
func StartCrasher(eng *sim.Engine, plan CrashPlan, crash, restart func()) (*Crasher, error) {
	if plan.MTBF <= 0 {
		return nil, ErrCrashPlan
	}
	if plan.Downtime <= 0 {
		plan.Downtime = 100 * sim.Millisecond
	}
	c := &Crasher{
		eng:     eng,
		rng:     eng.Rand().Fork(labelCrash),
		plan:    plan,
		crash:   crash,
		restart: restart,
	}
	c.armCrash()
	return c, nil
}

func (c *Crasher) armCrash() {
	c.eng.After(c.rng.Exp(c.plan.MTBF), func() {
		if c.stopped {
			return
		}
		c.down = true
		c.crashes++
		c.crash()
		c.eng.After(c.plan.Downtime, func() {
			if c.stopped {
				return
			}
			c.down = false
			c.restarts++
			c.restart()
			c.armCrash()
		})
	})
}

// Crashes returns how many crashes have fired.
func (c *Crasher) Crashes() uint64 { return c.crashes }

// Restarts returns how many restarts have completed.
func (c *Crasher) Restarts() uint64 { return c.restarts }

// Down reports whether the worker is currently crashed.
func (c *Crasher) Down() bool { return c.down }

// Stop ends the schedule; a worker currently down stays down.
func (c *Crasher) Stop() { c.stopped = true }
