// Integration tests: the fault layer driving the real kernel, server and
// workload stack. They live in package fault_test so the fault package
// itself stays a leaf (the kernel imports it).
package fault_test

import (
	"testing"

	"rescon/internal/fault"
	"rescon/internal/httpsim"
	"rescon/internal/kernel"
	"rescon/internal/netsim"
	"rescon/internal/sim"
	"rescon/internal/trace"
	"rescon/internal/workload"
)

var srvAddr = kernel.Addr("10.0.0.1", 80)

// faultRun is one complete fault-injection simulation; it returns every
// deterministic observable the acceptance criteria care about.
type faultRunResult struct {
	stats        fault.Stats
	policedDrops uint64
	diskErrors   uint64
	served       uint64
	completed    uint64
	timeouts     uint64
	retries      uint64
	faultEvents  uint64
	policeEvents uint64
	totalEvents  uint64
}

func faultRun(t *testing.T, seed int64) faultRunResult {
	t.Helper()
	eng := sim.NewEngine(seed)
	k := kernel.New(eng, kernel.ModeRC, kernel.DefaultCosts())
	k.Tracer = trace.New(1 << 16)
	inj := fault.NewInjector(eng, fault.Config{
		DropRate:      0.10,
		DupRate:       0.05,
		ReorderRate:   0.05,
		DelayRate:     0.10,
		DiskErrorRate: 0.10,
		DiskSlowRate:  0.10,
	})
	k.Faults = inj
	k.Disk().Faults = inj
	k.Police.Enabled = true

	ch := fault.NewChecker(eng)
	k.WatchInvariants(ch)
	ch.Start(0)

	srv, err := httpsim.NewServer(httpsim.Config{
		Kernel: k, Name: "httpd", Addr: srvAddr, API: httpsim.EventAPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	pop := workload.MustStartPopulation(8, workload.ClientConfig{
		Kernel:         k,
		Src:            netsim.Addr{IP: netsim.MustParseIP("10.1.0.1"), Port: 1024},
		Dst:            srvAddr,
		Uncached:       true, // hit the disk so disk faults fire
		ConnectTimeout: 200 * sim.Millisecond,
		RequestTimeout: 400 * sim.Millisecond,
		BackoffBase:    25 * sim.Millisecond,
	})
	// 12000 SYN/s × ~107 µs protocol cost oversubscribes the CPU on its
	// own, so the flood's container backlog crosses the policing threshold.
	workload.StartFlood(k, 12000, netsim.MustParseIP("66.0.0.1"), 1024, srvAddr)

	eng.RunUntil(sim.Time(0).Add(2 * sim.Second))

	res := faultRunResult{
		stats:        inj.Stats(),
		policedDrops: k.PolicedDrops(),
		diskErrors:   k.Disk().Errors(),
		served:       srv.StaticServed,
		completed:    pop.Completed(),
		totalEvents:  k.Tracer.Total(),
	}
	for _, c := range pop.Clients {
		res.timeouts += c.Timeouts.Value()
		res.retries += c.Retries.Value()
	}
	for _, ev := range k.Tracer.Events() {
		switch ev.Kind {
		case trace.KindFault:
			res.faultEvents++
		case trace.KindPolice:
			res.policeEvents++
		}
	}
	return res
}

func TestFaultRunEmitsTraceEvents(t *testing.T) {
	res := faultRun(t, 1999)
	if res.stats.WireDrops == 0 || res.stats.WireDups == 0 || res.stats.WireDelays == 0 {
		t.Fatalf("wire fault classes did not all fire: %v", res.stats)
	}
	if res.faultEvents == 0 {
		t.Fatal("no KindFault trace events emitted under fault injection")
	}
	if res.policeEvents == 0 || res.policedDrops == 0 {
		t.Fatalf("policing never fired under 8000 SYN/s overload: events=%d drops=%d",
			res.policeEvents, res.policedDrops)
	}
	if res.diskErrors == 0 {
		t.Fatal("no disk media errors surfaced to the disk layer")
	}
	if res.completed == 0 {
		t.Fatal("no client completed any request — degraded, not dead, is the goal")
	}
	if res.retries == 0 || res.timeouts == 0 {
		t.Fatalf("clients never exercised the retry path: timeouts=%d retries=%d",
			res.timeouts, res.retries)
	}
}

// TestFaultRunDeterminism is the acceptance criterion for the fault
// schedule: two runs with the same seed must produce identical fault,
// drop, retry and trace counts.
func TestFaultRunDeterminism(t *testing.T) {
	a := faultRun(t, 1999)
	b := faultRun(t, 1999)
	if a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultRunSeedSensitivity(t *testing.T) {
	a := faultRun(t, 1999)
	b := faultRun(t, 2000)
	if a.stats == b.stats {
		t.Fatalf("different seeds produced identical fault schedules: %v", a.stats)
	}
}
