package fault

import (
	"strings"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestCheckerCleanRun(t *testing.T) {
	eng := sim.NewEngine(1)
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	kid := rc.MustNew(root, rc.TimeShare, "kid", rc.Attributes{Priority: 1})

	ch := NewChecker(eng)
	ch.WatchContainers(kid) // any member watches the whole tree
	ch.Start(sim.Millisecond)

	eng.Every(sim.Millisecond/2, func() {
		kid.ChargeCPU(rc.UserCPU, 10*sim.Microsecond)
	})
	eng.RunUntil(sim.Time(0).Add(100 * sim.Millisecond))

	if ch.Checks() == 0 {
		t.Fatal("checker never ran")
	}
	if v := ch.Violations(); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckerCatchesQueueOverBound(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChecker(eng)
	ch.FailFast = false
	length := 0
	ch.WatchQueue("q", func() int { return length }, 4)

	ch.Check()
	if len(ch.Violations()) != 0 {
		t.Fatalf("violations on empty queue: %v", ch.Violations())
	}
	length = 5
	ch.Check()
	if len(ch.Violations()) != 1 || !strings.Contains(ch.Violations()[0], "over bound") {
		t.Fatalf("want one over-bound violation, got %v", ch.Violations())
	}
	length = -1
	ch.Check()
	if len(ch.Violations()) != 2 || !strings.Contains(ch.Violations()[1], "negative length") {
		t.Fatalf("want negative-length violation, got %v", ch.Violations())
	}
}

func TestCheckerCatchesConservationBreak(t *testing.T) {
	eng := sim.NewEngine(1)
	// Charge a child under one root, then reparent it under a fresh root:
	// the new parent never received the propagated charge, so parent CPU <
	// sum of children — exactly the drift the checker exists to catch.
	oldRoot := rc.MustNew(nil, rc.FixedShare, "old", rc.Attributes{})
	kid := rc.MustNew(oldRoot, rc.TimeShare, "kid", rc.Attributes{Priority: 1})
	kid.ChargeCPU(rc.KernelCPU, sim.Millisecond)
	newRoot := rc.MustNew(nil, rc.FixedShare, "new", rc.Attributes{})
	if err := kid.SetParent(newRoot); err != nil {
		t.Fatal(err)
	}

	ch := NewChecker(eng)
	ch.FailFast = false
	ch.WatchContainers(newRoot)
	ch.Check()
	found := false
	for _, v := range ch.Violations() {
		if strings.Contains(v, "CPU conservation broken") {
			found = true
		}
	}
	if !found {
		t.Fatalf("conservation break not detected: %v", ch.Violations())
	}
}

func TestCheckerFailFastPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChecker(eng)
	ch.WatchQueue("q", func() int { return 10 }, 4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("FailFast violation did not panic")
		}
	}()
	ch.Check()
}

func TestCheckerSkipsDestroyedAndDedupsRoots(t *testing.T) {
	eng := sim.NewEngine(1)
	root := rc.MustNew(nil, rc.FixedShare, "root", rc.Attributes{})
	a := rc.MustNew(root, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	b := rc.MustNew(root, rc.TimeShare, "b", rc.Attributes{Priority: 1})
	dead := rc.MustNew(nil, rc.TimeShare, "dead", rc.Attributes{Priority: 1})
	if err := dead.Release(); err != nil {
		t.Fatal(err)
	}

	ch := NewChecker(eng)
	ch.FailFast = false
	ch.WatchContainers(a, b, dead, nil)
	ch.Check()
	if len(ch.Violations()) != 0 {
		t.Fatalf("violations: %v", ch.Violations())
	}
}

func TestCheckerStartStop(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChecker(eng)
	ch.Start(0) // default period
	eng.RunUntil(sim.Time(0).Add(55 * sim.Millisecond))
	n := ch.Checks()
	if n == 0 {
		t.Fatal("periodic checker never fired")
	}
	ch.Stop()
	eng.RunUntil(sim.Time(0).Add(200 * sim.Millisecond))
	if ch.Checks() != n {
		t.Fatalf("checker fired after Stop: %d -> %d", n, ch.Checks())
	}
}

func TestCrasherSchedule(t *testing.T) {
	run := func() (uint64, uint64, []sim.Time) {
		eng := sim.NewEngine(13)
		var crashTimes []sim.Time
		var up, down int
		cr, err := StartCrasher(eng, CrashPlan{MTBF: 200 * sim.Millisecond, Downtime: 50 * sim.Millisecond},
			func() { down++; crashTimes = append(crashTimes, eng.Now()) },
			func() { up++ },
		)
		if err != nil {
			t.Fatalf("StartCrasher: %v", err)
		}
		eng.RunUntil(sim.Time(0).Add(3 * sim.Second))
		if down != int(cr.Crashes()) || up != int(cr.Restarts()) {
			t.Fatalf("callback counts diverge from Crasher counters")
		}
		return cr.Crashes(), cr.Restarts(), crashTimes
	}
	c1, r1, t1 := run()
	c2, r2, t2 := run()
	if c1 == 0 {
		t.Fatal("no crashes in 3s with 200ms MTBF")
	}
	if r1 > c1 || c1-r1 > 1 {
		t.Fatalf("restarts %d inconsistent with crashes %d", r1, c1)
	}
	if c1 != c2 || r1 != r2 {
		t.Fatalf("crash schedule not deterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("crash %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestCrasherStop(t *testing.T) {
	eng := sim.NewEngine(13)
	cr, err := StartCrasher(eng, CrashPlan{MTBF: 100 * sim.Millisecond}, func() {}, func() {})
	if err != nil {
		t.Fatalf("StartCrasher: %v", err)
	}
	eng.RunUntil(sim.Time(0).Add(time500ms))
	cr.Stop()
	n := cr.Crashes()
	eng.RunUntil(sim.Time(0).Add(5 * sim.Second))
	if cr.Crashes() != n {
		t.Fatalf("crashes after Stop: %d -> %d", n, cr.Crashes())
	}
}

const time500ms = 500 * sim.Millisecond

func TestCrasherRequiresMTBF(t *testing.T) {
	eng := sim.NewEngine(1)
	cr, err := StartCrasher(eng, CrashPlan{}, func() {}, func() {})
	if err == nil {
		t.Fatal("zero MTBF did not return an error")
	}
	if cr != nil {
		t.Fatal("zero MTBF returned a non-nil Crasher")
	}
}

func TestWatchCheckRejectsDuplicateName(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChecker(eng)
	ok := func() string { return "" }
	if err := ch.WatchCheck("conn-conservation", ok); err != nil {
		t.Fatal(err)
	}
	err := ch.WatchCheck("conn-conservation", func() string { return "impostor" })
	if err == nil {
		t.Fatal("duplicate check name accepted")
	}
	if !strings.Contains(err.Error(), "conn-conservation") {
		t.Fatalf("error does not name the duplicate: %v", err)
	}
	// The original registration must survive: a check run reports no
	// violations, proving the impostor was rejected rather than the
	// original overwritten.
	ch.FailFast = false
	ch.Check()
	if v := ch.Violations(); len(v) != 0 {
		t.Fatalf("duplicate registration replaced the original check: %v", v)
	}
	if err := ch.WatchCheck("", ok); err == nil {
		t.Error("empty check name accepted")
	}
	if err := ch.WatchCheck("nil-fn", nil); err == nil {
		t.Error("nil check function accepted")
	}
}

func TestMustWatchCheckPanicsOnDuplicate(t *testing.T) {
	eng := sim.NewEngine(1)
	ch := NewChecker(eng)
	ch.MustWatchCheck("once", func() string { return "" })
	defer func() {
		if recover() == nil {
			t.Fatal("MustWatchCheck did not panic on duplicate name")
		}
	}()
	ch.MustWatchCheck("once", func() string { return "" })
}
