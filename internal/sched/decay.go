package sched

import (
	"math"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// decayTau is the time constant of the exponential usage decay: usage
// observed decayTau ago counts for 1/e of fresh usage. One second matches
// the coarse-grained feel of the 4.3BSD scheduler.
const decayTau = sim.Second

// niceUnit is the usage offset one nice level is worth, in decayed
// seconds. Positive nice makes a principal look busier, so it yields CPU.
const niceUnit = 0.05

// DecayScheduler is the baseline process scheduler: each process is one
// resource principal; the runnable entity whose principal has the least
// decayed CPU usage runs next. Interrupt-level processing is charged to
// whatever principal was running (see kernel.CPU), reproducing the
// misaccounting of paper §3.2/§5.6.
type DecayScheduler struct {
	set     entitySet
	quantum sim.Duration
}

// NewDecayScheduler returns a baseline scheduler with the default quantum.
func NewDecayScheduler() *DecayScheduler {
	return &DecayScheduler{quantum: DefaultQuantum}
}

// Register implements Scheduler.
func (s *DecayScheduler) Register(e *Entity) {
	if e.Proc == nil {
		panic("sched: DecayScheduler entity without a process principal")
	}
	s.set.register(e)
}

// Unregister implements Scheduler.
func (s *DecayScheduler) Unregister(e *Entity) { s.set.unregister(e) }

// SetRunnable implements Scheduler.
func (s *DecayScheduler) SetRunnable(e *Entity, runnable bool) { s.set.setRunnable(e, runnable) }

func (p *ProcPrincipal) decay(now sim.Time) {
	if now <= p.lastDecay {
		return
	}
	dt := now.Sub(p.lastDecay)
	p.decayed *= math.Exp(-dt.Seconds() / decayTau.Seconds())
	p.lastDecay = now
}

// key is the scheduling key: lower runs first.
func (p *ProcPrincipal) key(now sim.Time) float64 {
	p.decay(now)
	return p.decayed + float64(p.Nice)*niceUnit
}

// Pick implements Scheduler: the runnable entity with the smallest
// principal key runs; ties break round-robin by least-recently-run, then
// by registration order (deterministic).
func (s *DecayScheduler) Pick(now sim.Time) *Entity {
	best := s.pickIn(s.set.runnable, now)
	if best != nil {
		best.lastRun = now
	}
	return best
}

// pickIn finds the least-key candidate in one seq-ordered runnable list
// (the shared list, or a per-CPU shard).
func (s *DecayScheduler) pickIn(list []*Entity, now sim.Time) *Entity {
	var best *Entity
	var bestKey float64
	for _, e := range list {
		if e.onCPU {
			continue
		}
		k := e.Proc.key(now)
		if best == nil || less(k, e, bestKey, best) {
			best, bestKey = e, k
		}
	}
	return best
}

// less orders (key, entity) pairs: smaller key first; among near-equal
// keys, least-recently-run first, then registration order.
func less(k float64, e *Entity, bk float64, be *Entity) bool {
	const eps = 1e-12
	if k < bk-eps {
		return true
	}
	if k > bk+eps {
		return false
	}
	if e.lastRun != be.lastRun {
		return e.lastRun < be.lastRun
	}
	return e.seq < be.seq
}

// Charge implements Scheduler: usage lands on the entity's process
// principal; the container argument is ignored — the baseline system has
// no container principals.
func (s *DecayScheduler) Charge(e *Entity, _ *rc.Container, d sim.Duration, now sim.Time) {
	p := e.Proc
	p.decay(now)
	p.decayed += d.Seconds()
	p.total += d
}

// Bind implements Scheduler as a no-op: the baseline has no scheduler
// bindings.
func (s *DecayScheduler) Bind(e *Entity, c *rc.Container, now sim.Time) { e.Resource = c }

// ResetBinding implements Scheduler as a no-op.
func (s *DecayScheduler) ResetBinding(*Entity) {}

// Quantum implements Scheduler.
func (s *DecayScheduler) Quantum() sim.Duration { return s.quantum }

// NextRelease implements Scheduler: the baseline never throttles.
func (s *DecayScheduler) NextRelease(sim.Time) (sim.Time, bool) { return 0, false }

// RunnableCount implements Scheduler: the current run-queue depth.
func (s *DecayScheduler) RunnableCount() int { return s.set.runnableCount() }
