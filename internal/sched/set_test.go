package sched

import (
	"testing"

	"rescon/internal/sim"
)

func newTestEntities(s Scheduler, n int) []*Entity {
	out := make([]*Entity, n)
	for i := 0; i < n; i++ {
		e := &Entity{ID: uint64(i + 1), Proc: NewProcPrincipal("p")}
		s.Register(e)
		out[i] = e
	}
	return out
}

// unregister is O(1) swap-remove; this pins the bookkeeping it relies on:
// setIdx stays consistent and the runnable list keeps seq order no matter
// which slot was vacated.
func TestEntitySetUnregisterBookkeeping(t *testing.T) {
	s := NewDecayScheduler()
	ents := newTestEntities(s, 8)
	for _, e := range ents {
		s.SetRunnable(e, true)
	}
	// Remove from the middle, the head, and the tail.
	for _, victim := range []*Entity{ents[3], ents[0], ents[7]} {
		s.Unregister(victim)
		if victim.setIdx != -1 {
			t.Fatalf("unregistered entity %d keeps setIdx %d", victim.ID, victim.setIdx)
		}
		for i, e := range s.set.entities {
			if e.setIdx != i {
				t.Fatalf("entities[%d].setIdx = %d after removing %d", i, e.setIdx, victim.ID)
			}
		}
		for i := 1; i < len(s.set.runnable); i++ {
			if s.set.runnable[i-1].seq >= s.set.runnable[i].seq {
				t.Fatalf("runnable list out of seq order after removing %d", victim.ID)
			}
		}
		for _, e := range s.set.runnable {
			if e == victim {
				t.Fatalf("unregistered entity %d still in runnable list", victim.ID)
			}
		}
	}
	if got, want := len(s.set.entities), 5; got != want {
		t.Fatalf("entities after removals: %d, want %d", got, want)
	}
	// Double unregister is a no-op.
	s.Unregister(ents[3])
	if len(s.set.entities) != 5 {
		t.Fatal("double unregister changed the set")
	}
	// The survivors still schedule.
	if e := s.Pick(sim.Time(0)); e == nil {
		t.Fatal("no entity picked after removals")
	}
}

// The runnable list must mirror the runnable flags through arbitrary
// toggles, and Pick must consider candidates in registration order — the
// property the tie-break in less() depends on.
func TestRunnableListTracksFlags(t *testing.T) {
	s := NewDecayScheduler()
	ents := newTestEntities(s, 6)
	toggle := []struct {
		idx int
		val bool
	}{
		{0, true}, {2, true}, {4, true}, {2, false}, {2, true},
		{2, true}, // redundant set: must not duplicate the entry
		{0, false}, {5, true}, {0, true},
	}
	want := map[uint64]bool{}
	for _, op := range toggle {
		s.SetRunnable(ents[op.idx], op.val)
		want[ents[op.idx].ID] = op.val
	}
	var got []uint64
	for _, e := range s.set.runnable {
		got = append(got, e.ID)
	}
	var wantIDs []uint64
	for _, e := range ents {
		if want[e.ID] {
			wantIDs = append(wantIDs, e.ID)
		}
	}
	if len(got) != len(wantIDs) {
		t.Fatalf("runnable list %v, want %v", got, wantIDs)
	}
	for i := range got {
		if got[i] != wantIDs[i] {
			t.Fatalf("runnable list %v, want %v (seq order)", got, wantIDs)
		}
	}
}

// SetRunnable before Register must not corrupt the set: the flag is
// honored when the entity is later registered.
func TestSetRunnableBeforeRegister(t *testing.T) {
	s := NewDecayScheduler()
	e := &Entity{ID: 1, Proc: NewProcPrincipal("p")}
	s.SetRunnable(e, true)
	s.Register(e)
	if len(s.set.runnable) != 1 || s.set.runnable[0] != e {
		t.Fatalf("pre-registration runnable flag lost: %v", s.set.runnable)
	}
	if got := s.Pick(sim.Time(0)); got != e {
		t.Fatalf("Pick = %v, want the pre-marked entity", got)
	}
}
