package sched

import (
	"math"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// drive simulates a minimal CPU loop for total virtual time: pick, run a
// (possibly budget-clipped) slice, charge it to the entity's current
// resource binding. It returns per-entity CPU received.
func drive(s Scheduler, total sim.Duration) map[*Entity]sim.Duration {
	got := make(map[*Entity]sim.Duration)
	now := sim.Time(0)
	end := sim.Time(total)
	for now < end {
		e := s.Pick(now)
		if e == nil {
			next, ok := s.NextRelease(now)
			if !ok || next <= now {
				// Nothing will ever run again; idle to the end.
				break
			}
			if next > end {
				next = end
			}
			now = next
			continue
		}
		slice := s.Quantum()
		if b, ok := s.(SliceBudgeter); ok && e.Resource != nil {
			if sb := b.SliceBudget(e.Resource, now); sb < slice {
				slice = sb
			}
		}
		if rem := end.Sub(now); rem < slice {
			slice = rem
		}
		now = now.Add(slice)
		if e.Resource != nil {
			e.Resource.ChargeCPU(rc.UserCPU, slice)
		}
		s.Charge(e, e.Resource, slice, now)
		got[e] += slice
	}
	return got
}

func frac(d, total sim.Duration) float64 { return float64(d) / float64(total) }

func within(t *testing.T, got, want, tol float64, label string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %.4f, want %.4f ± %.4f", label, got, want, tol)
	}
}

// --- DecayScheduler ---

func TestDecayEqualShares(t *testing.T) {
	s := NewDecayScheduler()
	a := &Entity{ID: 1, Name: "a", Proc: NewProcPrincipal("A")}
	b := &Entity{ID: 2, Name: "b", Proc: NewProcPrincipal("B")}
	s.Register(a)
	s.Register(b)
	s.SetRunnable(a, true)
	s.SetRunnable(b, true)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[a], 10*sim.Second), 0.5, 0.02, "A share")
	within(t, frac(got[b], 10*sim.Second), 0.5, 0.02, "B share")
}

func TestDecayEqualSharesManyProcs(t *testing.T) {
	s := NewDecayScheduler()
	var es []*Entity
	for i := 0; i < 5; i++ {
		e := &Entity{ID: uint64(i), Proc: NewProcPrincipal("p")}
		s.Register(e)
		s.SetRunnable(e, true)
		es = append(es, e)
	}
	got := drive(s, 10*sim.Second)
	for i, e := range es {
		within(t, frac(got[e], 10*sim.Second), 0.2, 0.02, "share of proc "+string(rune('0'+i)))
	}
}

func TestDecayMisaccountingShiftsShares(t *testing.T) {
	// Reproduce the §5.6 effect: extra (interrupt) time charged to B makes
	// B look busier, so B receives less actual CPU than A.
	s := NewDecayScheduler()
	a := &Entity{ID: 1, Proc: NewProcPrincipal("A")}
	b := &Entity{ID: 2, Proc: NewProcPrincipal("B")}
	s.Register(a)
	s.Register(b)
	s.SetRunnable(a, true)
	s.SetRunnable(b, true)
	got := make(map[*Entity]sim.Duration)
	now := sim.Time(0)
	end := sim.Time(10 * sim.Second)
	for now < end {
		e := s.Pick(now)
		slice := s.Quantum()
		now = now.Add(slice)
		s.Charge(e, nil, slice, now)
		got[e] += slice
		if e == b {
			// Every slice B runs, an equal amount of interrupt work gets
			// misaccounted to it (but consumes no simulated CPU here).
			s.Charge(b, nil, slice, now)
		}
	}
	sa, sb := frac(got[a], 10*sim.Second), frac(got[b], 10*sim.Second)
	if sa <= sb {
		t.Fatalf("misaccounted principal should lose CPU: A=%.3f B=%.3f", sa, sb)
	}
	// B is charged at 2x rate, so equilibrium is A:B = 2:1.
	within(t, sa, 2.0/3.0, 0.05, "A share")
}

func TestDecayNice(t *testing.T) {
	s := NewDecayScheduler()
	a := &Entity{ID: 1, Proc: NewProcPrincipal("A")}
	b := &Entity{ID: 2, Proc: &ProcPrincipal{Name: "B", Nice: 4}}
	s.Register(a)
	s.Register(b)
	s.SetRunnable(a, true)
	s.SetRunnable(b, true)
	got := drive(s, 10*sim.Second)
	if got[a] <= got[b] {
		t.Fatalf("niced principal should get less CPU: A=%v B=%v", got[a], got[b])
	}
}

func TestDecayOnlyRunnable(t *testing.T) {
	s := NewDecayScheduler()
	a := &Entity{ID: 1, Proc: NewProcPrincipal("A")}
	b := &Entity{ID: 2, Proc: NewProcPrincipal("B")}
	s.Register(a)
	s.Register(b)
	s.SetRunnable(a, true)
	got := drive(s, sim.Second)
	if got[b] != 0 {
		t.Fatal("blocked entity ran")
	}
	if got[a] != sim.Second {
		t.Fatalf("runnable entity got %v, want all", got[a])
	}
}

func TestDecayPickNilWhenAllBlocked(t *testing.T) {
	s := NewDecayScheduler()
	e := &Entity{ID: 1, Proc: NewProcPrincipal("A")}
	s.Register(e)
	if s.Pick(0) != nil {
		t.Fatal("Pick should return nil with no runnable entities")
	}
	if _, ok := s.NextRelease(0); ok {
		t.Fatal("decay scheduler never throttles")
	}
}

func TestDecayUnregister(t *testing.T) {
	s := NewDecayScheduler()
	e := &Entity{ID: 1, Proc: NewProcPrincipal("A")}
	s.Register(e)
	s.SetRunnable(e, true)
	s.Unregister(e)
	if s.Pick(0) != nil {
		t.Fatal("unregistered entity picked")
	}
}

func TestDecayRegisterWithoutProcPanics(t *testing.T) {
	s := NewDecayScheduler()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Register(&Entity{ID: 1})
}

func TestDecayTotalCPUAccumulates(t *testing.T) {
	s := NewDecayScheduler()
	p := NewProcPrincipal("A")
	e := &Entity{ID: 1, Proc: p}
	s.Register(e)
	s.SetRunnable(e, true)
	drive(s, sim.Second)
	if p.TotalCPU() != sim.Second {
		t.Fatalf("TotalCPU %v, want 1s", p.TotalCPU())
	}
}

func TestDecayThreadsOfSameProcessShareOnePrincipal(t *testing.T) {
	s := NewDecayScheduler()
	pa := NewProcPrincipal("A")
	a1 := &Entity{ID: 1, Proc: pa}
	a2 := &Entity{ID: 2, Proc: pa}
	b := &Entity{ID: 3, Proc: NewProcPrincipal("B")}
	for _, e := range []*Entity{a1, a2, b} {
		s.Register(e)
		s.SetRunnable(e, true)
	}
	got := drive(s, 10*sim.Second)
	// Process A (two threads) and process B should each get ~50%.
	within(t, frac(got[a1]+got[a2], 10*sim.Second), 0.5, 0.03, "proc A share")
	within(t, frac(got[b], 10*sim.Second), 0.5, 0.03, "proc B share")
}

// --- ContainerScheduler ---

func leafEntity(id uint64, c *rc.Container, s Scheduler) *Entity {
	e := &Entity{ID: id, Name: c.Name()}
	s.Register(e)
	s.Bind(e, c, 0)
	s.SetRunnable(e, true)
	return e
}

func TestContainerWeightedTimeShare(t *testing.T) {
	s := NewContainerScheduler()
	ca := rc.MustNew(nil, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	cb := rc.MustNew(nil, rc.TimeShare, "b", rc.Attributes{Priority: 2})
	a := leafEntity(1, ca, s)
	b := leafEntity(2, cb, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[a], 10*sim.Second), 1.0/3.0, 0.04, "weight-1 share")
	within(t, frac(got[b], 10*sim.Second), 2.0/3.0, 0.04, "weight-2 share")
}

func TestContainerIdleClassStarvesUnderLoad(t *testing.T) {
	s := NewContainerScheduler()
	normal := rc.MustNew(nil, rc.TimeShare, "normal", rc.Attributes{Priority: 1})
	idle := rc.MustNew(nil, rc.TimeShare, "idle", rc.Attributes{Priority: 0})
	n := leafEntity(1, normal, s)
	i := leafEntity(2, idle, s)
	got := drive(s, 5*sim.Second)
	if got[i] != 0 {
		t.Fatalf("idle-class container ran %v while normal work pending", got[i])
	}
	if got[n] != 5*sim.Second {
		t.Fatalf("normal container got %v", got[n])
	}
	// When the normal entity blocks, the idle class runs.
	s.SetRunnable(n, false)
	if s.Pick(sim.Time(5*sim.Second)) != i {
		t.Fatal("idle class should run when nothing else is runnable")
	}
}

func TestContainerCapEnforced(t *testing.T) {
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "cgi-parent", rc.Attributes{Limit: 0.3})
	leaf := rc.MustNew(capped, rc.TimeShare, "cgi-1", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "server", rc.Attributes{Priority: 1})
	c := leafEntity(1, leaf, s)
	f := leafEntity(2, free, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[c], 10*sim.Second), 0.3, 0.02, "capped share")
	within(t, frac(got[f], 10*sim.Second), 0.7, 0.02, "uncapped share")
}

func TestContainerCapSharedBySiblings(t *testing.T) {
	// The cap constrains the whole subtree (§4.5): two CGI children under
	// a 30% parent must together stay at 30%.
	s := NewContainerScheduler()
	parent := rc.MustNew(nil, rc.FixedShare, "cgi-parent", rc.Attributes{Limit: 0.3})
	l1 := rc.MustNew(parent, rc.TimeShare, "cgi-1", rc.Attributes{Priority: 1})
	l2 := rc.MustNew(parent, rc.TimeShare, "cgi-2", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "server", rc.Attributes{Priority: 1})
	e1 := leafEntity(1, l1, s)
	e2 := leafEntity(2, l2, s)
	f := leafEntity(3, free, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[e1]+got[e2], 10*sim.Second), 0.3, 0.02, "subtree share")
	within(t, frac(got[f], 10*sim.Second), 0.7, 0.02, "free share")
	within(t, frac(got[e1], 10*sim.Second), 0.15, 0.03, "sibling 1 fair split")
}

func TestContainerCapWorkConserving(t *testing.T) {
	// A capped container alone on the machine is throttled to its cap;
	// the CPU idles the rest of the window (that is what a cap means).
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.25})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	e := leafEntity(1, leaf, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[e], 10*sim.Second), 0.25, 0.02, "capped alone")
}

func TestContainerNestedCaps(t *testing.T) {
	// A 50% child inside a 50% parent is limited to 25% of the machine.
	s := NewContainerScheduler()
	outer := rc.MustNew(nil, rc.FixedShare, "outer", rc.Attributes{Limit: 0.5})
	inner := rc.MustNew(outer, rc.FixedShare, "inner", rc.Attributes{Limit: 0.5})
	leaf := rc.MustNew(inner, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	other := rc.MustNew(nil, rc.TimeShare, "other", rc.Attributes{Priority: 1})
	e := leafEntity(1, leaf, s)
	o := leafEntity(2, other, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[e], 10*sim.Second), 0.25, 0.02, "nested cap")
	within(t, frac(got[o], 10*sim.Second), 0.75, 0.02, "other")
}

func TestContainerFixedShareGuarantees(t *testing.T) {
	// Three saturating guests with 50/30/20 shares: consumption matches
	// allocation (§5.8).
	s := NewContainerScheduler()
	shares := []float64{0.5, 0.3, 0.2}
	var es []*Entity
	for i, sh := range shares {
		g := rc.MustNew(nil, rc.FixedShare, "guest", rc.Attributes{Share: sh})
		leaf := rc.MustNew(g, rc.TimeShare, "work", rc.Attributes{Priority: 1})
		es = append(es, leafEntity(uint64(i+1), leaf, s))
	}
	got := drive(s, 10*sim.Second)
	for i, sh := range shares {
		within(t, frac(got[es[i]], 10*sim.Second), sh, 0.02, "guest share")
	}
}

func TestContainerShareIsGuaranteeNotCap(t *testing.T) {
	// With only one guest active, a work-conserving share lets it take
	// the whole machine.
	s := NewContainerScheduler()
	g := rc.MustNew(nil, rc.FixedShare, "guest", rc.Attributes{Share: 0.3})
	leaf := rc.MustNew(g, rc.TimeShare, "work", rc.Attributes{Priority: 1})
	e := leafEntity(1, leaf, s)
	got := drive(s, sim.Second)
	if got[e] != sim.Second {
		t.Fatalf("lone guest got %v, want all CPU", got[e])
	}
}

func TestContainerGuaranteeBeatsTimeShare(t *testing.T) {
	// A 70% guarantee holds against a high-priority time-share container.
	s := NewContainerScheduler()
	g := rc.MustNew(nil, rc.FixedShare, "guaranteed", rc.Attributes{Share: 0.7})
	gl := rc.MustNew(g, rc.TimeShare, "gwork", rc.Attributes{Priority: 1})
	ts := rc.MustNew(nil, rc.TimeShare, "ts", rc.Attributes{Priority: 50})
	ge := leafEntity(1, gl, s)
	te := leafEntity(2, ts, s)
	got := drive(s, 10*sim.Second)
	within(t, frac(got[ge], 10*sim.Second), 0.7, 0.03, "guaranteed share")
	within(t, frac(got[te], 10*sim.Second), 0.3, 0.03, "leftover share")
}

func TestContainerThrottledNextRelease(t *testing.T) {
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.1})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	leafEntity(1, leaf, s)
	// Exhaust the budget.
	now := sim.Time(0)
	for {
		e := s.Pick(now)
		if e == nil {
			break
		}
		slice := s.SliceBudget(leaf, now)
		now = now.Add(slice)
		leaf.ChargeCPU(rc.UserCPU, slice)
		s.Charge(e, leaf, slice, now)
	}
	next, ok := s.NextRelease(now)
	if !ok {
		t.Fatal("NextRelease should report a pending throttled entity")
	}
	if next <= now {
		t.Fatalf("NextRelease %v not in the future (now %v)", next, now)
	}
	// After the window rolls, the entity is eligible again.
	if e := s.Pick(next); e == nil {
		t.Fatal("entity still throttled after window roll")
	}
}

func TestContainerSliceBudgetClipping(t *testing.T) {
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.3})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	// Fresh window: budget = 0.3 * 20ms = 6ms, clipped to quantum 1ms.
	if b := s.SliceBudget(leaf, 0); b != s.Quantum() {
		t.Fatalf("budget %v, want quantum", b)
	}
	// Consume 5.5ms: remaining budget 0.5ms < quantum.
	leaf.ChargeCPU(rc.UserCPU, 5500*sim.Microsecond)
	if b := s.SliceBudget(leaf, sim.Time(sim.Millisecond)); b != 500*sim.Microsecond {
		t.Fatalf("budget %v, want 500µs", b)
	}
	// Over budget: zero — the kernel must not run this work until the
	// window rolls.
	leaf.ChargeCPU(rc.UserCPU, sim.Millisecond)
	if b := s.SliceBudget(leaf, sim.Time(sim.Millisecond)); b != 0 {
		t.Fatalf("budget %v, want 0", b)
	}
	if nw := s.NextWindow(sim.Time(sim.Millisecond)); nw != sim.Time(s.Window) {
		t.Fatalf("NextWindow %v, want %v", nw, sim.Time(s.Window))
	}
}

func TestContainerUncappedSliceBudgetIsQuantum(t *testing.T) {
	s := NewContainerScheduler()
	leaf := rc.MustNew(nil, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	if b := s.SliceBudget(leaf, 0); b != s.Quantum() {
		t.Fatalf("budget %v, want quantum", b)
	}
}

func TestSchedulerBindingAccumulatesAndPrunes(t *testing.T) {
	s := NewContainerScheduler()
	c1 := rc.MustNew(nil, rc.TimeShare, "c1", rc.Attributes{Priority: 1})
	c2 := rc.MustNew(nil, rc.TimeShare, "c2", rc.Attributes{Priority: 1})
	e := &Entity{ID: 1}
	s.Register(e)
	s.Bind(e, c1, 0)
	s.Bind(e, c2, sim.Time(sim.Millisecond))
	if len(e.Binding()) != 2 {
		t.Fatalf("binding size %d, want 2", len(e.Binding()))
	}
	// Rebinding to c2 much later prunes c1 (older than PruneAge) but the
	// current resource binding stays.
	s.Bind(e, c2, sim.Time(sim.Second))
	bs := e.Binding()
	if len(bs) != 1 || bs[0] != c2 {
		t.Fatalf("binding after prune: %v", bs)
	}
}

func TestSchedulerBindingPruneDisabled(t *testing.T) {
	s := NewContainerScheduler()
	s.DisablePruning = true
	c1 := rc.MustNew(nil, rc.TimeShare, "c1", rc.Attributes{Priority: 1})
	c2 := rc.MustNew(nil, rc.TimeShare, "c2", rc.Attributes{Priority: 1})
	e := &Entity{ID: 1}
	s.Register(e)
	s.Bind(e, c1, 0)
	s.Bind(e, c2, sim.Time(sim.Second))
	if len(e.Binding()) != 2 {
		t.Fatalf("binding size %d, want 2 with pruning disabled", len(e.Binding()))
	}
}

func TestSchedulerBindingDropsDestroyed(t *testing.T) {
	s := NewContainerScheduler()
	c1 := rc.MustNew(nil, rc.TimeShare, "c1", rc.Attributes{Priority: 1})
	c2 := rc.MustNew(nil, rc.TimeShare, "c2", rc.Attributes{Priority: 1})
	e := &Entity{ID: 1}
	s.Register(e)
	s.Bind(e, c1, 0)
	s.Bind(e, c2, 0)
	_ = c1.Release()
	s.Bind(e, c2, sim.Time(sim.Microsecond))
	for _, c := range e.Binding() {
		if c == c1 {
			t.Fatal("destroyed container still in scheduler binding")
		}
	}
}

func TestResetBinding(t *testing.T) {
	s := NewContainerScheduler()
	c1 := rc.MustNew(nil, rc.TimeShare, "c1", rc.Attributes{Priority: 1})
	c2 := rc.MustNew(nil, rc.TimeShare, "c2", rc.Attributes{Priority: 1})
	e := &Entity{ID: 1}
	s.Register(e)
	s.Bind(e, c1, 0)
	s.Bind(e, c2, 0)
	s.ResetBinding(e)
	bs := e.Binding()
	if len(bs) != 1 || bs[0] != c2 {
		t.Fatalf("ResetBinding left %v, want just current binding c2", bs)
	}
}

func TestEmptyBindingPanics(t *testing.T) {
	s := NewContainerScheduler()
	e := &Entity{ID: 1}
	s.Register(e)
	s.SetRunnable(e, true)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for runnable entity with empty binding")
		}
	}()
	s.Pick(0)
}

func TestMultiplexedThreadCombinedScheduling(t *testing.T) {
	// A thread multiplexed over two containers (event-driven server) is
	// scheduled by their combined state: it stays runnable even when one
	// container is throttled.
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.01})
	cl := rc.MustNew(capped, rc.TimeShare, "cl", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "free", rc.Attributes{Priority: 1})
	e := &Entity{ID: 1}
	s.Register(e)
	s.Bind(e, cl, 0)
	s.Bind(e, free, 0)
	s.SetRunnable(e, true)
	// Exhaust the capped container's budget.
	cl.ChargeCPU(rc.UserCPU, sim.Second)
	if got := s.Pick(sim.Time(sim.Millisecond)); got != e {
		t.Fatal("thread with one eligible binding container should still run")
	}
}

func TestContainerChargeNilIsNoop(t *testing.T) {
	s := NewContainerScheduler()
	e := &Entity{ID: 1}
	s.Register(e)
	s.Charge(e, nil, sim.Millisecond, 0) // must not panic
}

func TestContainerUnregister(t *testing.T) {
	s := NewContainerScheduler()
	c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
	e := leafEntity(1, c, s)
	s.Unregister(e)
	if s.Pick(0) != nil {
		t.Fatal("unregistered entity picked")
	}
}

func TestCapAccuracyFine(t *testing.T) {
	// §5.6: "the CPU limits are enforced almost exactly." Verify a 10%
	// cap lands within half a percentage point.
	s := NewContainerScheduler()
	capped := rc.MustNew(nil, rc.FixedShare, "cgi", rc.Attributes{Limit: 0.1})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 1})
	free := rc.MustNew(nil, rc.TimeShare, "srv", rc.Attributes{Priority: 1})
	e := leafEntity(1, leaf, s)
	leafEntity(2, free, s)
	got := drive(s, 20*sim.Second)
	within(t, frac(got[e], 20*sim.Second), 0.1, 0.005, "10% cap accuracy")
}
