package sched

import (
	"fmt"
	"math"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// DefaultWindow is the fixed-share/cap enforcement window. Guarantees and
// limits hold over multiples of this window; the paper's prototype
// enforced them at tens of seconds, we enforce much finer.
const DefaultWindow = 20 * sim.Millisecond

// DefaultPruneAge is how long a container stays in a thread's scheduler
// binding after the thread last had a resource binding to it (§4.3: the
// kernel prunes the scheduler binding periodically).
const DefaultPruneAge = 100 * sim.Millisecond

// cstate is the scheduler's per-container bookkeeping, stored in the
// container's SchedState slot.
type cstate struct {
	decayed   float64      // decayed CPU usage of this leaf, in seconds
	lastDecay sim.Time     // last decay application
	snapshot  sim.Duration // subtree CPU usage at the start of the window

	// Cached attribute aggregates over the ancestor chain, so the Pick
	// path does not recompute O(depth²) products on every evaluation.
	// Invalidated by rc's epoch counter, which bumps on any attribute or
	// topology change in the subtree.
	cacheValid bool
	cacheEpoch uint64
	capBudget  sim.Duration // own-limit window budget; -1 when no own limit
	effShare   float64      // guaranteed machine fraction (0 when no own share)
}

// ContainerScheduler schedules threads by the attributes and usage of the
// resource containers in their scheduler bindings (§4.3). It implements
// the prototype's multi-level policy (§5.1): fixed-share guarantees and
// hard caps enforced over a window, regular time-sharing below them, and
// an idle class for priority-0 time-share containers.
type ContainerScheduler struct {
	set     entitySet
	quantum sim.Duration

	// Window is the share/cap enforcement window.
	Window sim.Duration
	// PruneAge is the scheduler-binding pruning age. Setting
	// DisablePruning keeps stale containers in bindings forever — the
	// ablation knob for the pruning design choice.
	PruneAge       sim.Duration
	DisablePruning bool
	// Capacity is the number of processors: share guarantees and limit
	// budgets are fractions of the whole machine, so they scale with it.
	Capacity int

	windowStart  sim.Time
	registered   []*rc.Container
	sawThrottled bool
	policy       LeafPolicy
	rng          *sim.RNG
}

// NewContainerScheduler returns a container scheduler with default
// quantum, window and pruning age.
func NewContainerScheduler() *ContainerScheduler {
	return &ContainerScheduler{
		quantum:  DefaultQuantum,
		Window:   DefaultWindow,
		PruneAge: DefaultPruneAge,
		Capacity: 1,
	}
}

// Register implements Scheduler.
func (s *ContainerScheduler) Register(e *Entity) { s.set.register(e) }

// Unregister implements Scheduler.
func (s *ContainerScheduler) Unregister(e *Entity) { s.set.unregister(e) }

// SetRunnable implements Scheduler.
func (s *ContainerScheduler) SetRunnable(e *Entity, runnable bool) { s.set.setRunnable(e, runnable) }

// Quantum implements Scheduler.
func (s *ContainerScheduler) Quantum() sim.Duration { return s.quantum }

// state returns (registering if needed) the scheduler state of c.
func (s *ContainerScheduler) state(c *rc.Container) *cstate {
	if st, ok := c.SchedState.(*cstate); ok {
		return st
	}
	st := &cstate{snapshot: c.Usage().CPU(), lastDecay: s.windowStart}
	c.SchedState = st
	s.registered = append(s.registered, c)
	return st
}

// registerChain registers c and all its ancestors.
func (s *ContainerScheduler) registerChain(c *rc.Container) {
	for p := c; p != nil; p = p.Parent() {
		s.state(p)
	}
}

// rollWindow starts a new enforcement window if the current one expired:
// every registered container's usage snapshot advances, replenishing cap
// budgets and resetting guarantee progress.
func (s *ContainerScheduler) rollWindow(now sim.Time) {
	if now.Sub(s.windowStart) < s.Window {
		return
	}
	// Compact destroyed containers while resnapshotting, so short-lived
	// per-connection containers do not accumulate.
	kept := s.registered[:0]
	for _, c := range s.registered {
		if c.Destroyed() {
			c.SchedState = nil
			continue
		}
		s.state(c).snapshot = c.Usage().CPU()
		kept = append(kept, c)
	}
	s.registered = kept
	s.windowStart = now
}

// windowUsage returns the CPU consumed by c's subtree in the current
// window.
func (s *ContainerScheduler) windowUsage(c *rc.Container) sim.Duration {
	u := c.Usage().CPU() - s.state(c).snapshot
	if u < 0 {
		return 0
	}
	return u
}

// attrs returns c's scheduler state with the cached attribute aggregates
// up to date. The products are recomputed only when the container's epoch
// changes (any attribute or topology change in the subtree bumps it);
// otherwise every throttle/deficit check on the Pick path reads two cached
// scalars. The accumulation order deliberately matches the original
// per-call walks (leaf to root) so the cached floats are bit-identical to
// what an uncached evaluation would produce.
func (s *ContainerScheduler) attrs(c *rc.Container) *cstate {
	st := s.state(c)
	epoch := c.Epoch()
	if st.cacheValid && st.cacheEpoch == epoch {
		return st
	}
	chain := c.Ancestors()
	st.capBudget = -1
	if l := c.Attributes().Limit; l > 0 {
		parentFrac := 1.0
		for _, p := range chain[1:] {
			if pl := p.Attributes().Limit; pl > 0 {
				parentFrac *= pl
			}
		}
		st.capBudget = sim.Duration(l * parentFrac * float64(s.Window) * float64(s.Capacity))
	}
	st.effShare = 0
	if own := c.Attributes().Share; own > 0 {
		f := own
		for _, p := range chain[1:] {
			if sh := p.Attributes().Share; sh > 0 {
				f *= sh
			}
		}
		st.effShare = f
	}
	st.cacheEpoch = epoch
	st.cacheValid = true
	return st
}

// throttled reports whether c or any ancestor has exhausted its CPU limit
// budget for the current window (§4.1 resource limits; §5.6 CGI caps).
func (s *ContainerScheduler) throttled(c *rc.Container) bool {
	for _, p := range c.Ancestors() {
		st := s.attrs(p)
		if st.capBudget < 0 {
			continue
		}
		if s.windowUsage(p) >= st.capBudget {
			return true
		}
	}
	return false
}

// pathDeficit returns the largest positive guarantee deficit on c's
// ancestor path: how far behind its fixed-share guarantee the most
// deprived enclosing subtree is, in CPU time.
func (s *ContainerScheduler) pathDeficit(c *rc.Container, now sim.Time) sim.Duration {
	elapsed := now.Sub(s.windowStart)
	var max sim.Duration
	for _, p := range c.Ancestors() {
		sh := s.attrs(p).effShare
		if sh <= 0 {
			continue
		}
		d := sim.Duration(sh*float64(elapsed)*float64(s.Capacity)) - s.windowUsage(p)
		if d > max {
			max = d
		}
	}
	return max
}

// weight returns the time-sharing weight of a container. Priority-0
// time-share containers form the idle class (weight 0), the mechanism
// behind the SYN-flood defense of §5.7. Fixed-share containers never
// starve: they default to weight 1 when no priority is set.
func weight(c *rc.Container) float64 {
	p := c.Attributes().Priority
	if p > 0 {
		return float64(p)
	}
	if c.Class() == rc.FixedShare {
		return 1
	}
	return 0
}

// decayedOf applies lazy exponential decay and returns the leaf's decayed
// usage.
func (s *ContainerScheduler) decayedOf(c *rc.Container, now sim.Time) float64 {
	st := s.state(c)
	if now > st.lastDecay {
		dt := now.Sub(st.lastDecay)
		st.decayed *= math.Exp(-dt.Seconds() / decayTau.Seconds())
		st.lastDecay = now
	}
	return st.decayed
}

// schedClass orders candidate entities: guarantee-deficit first, then
// regular time-sharing, then the idle class.
type schedClass int

const (
	classGuarantee schedClass = iota
	classNormal
	classIdle
	classNone // not eligible at all (throttled or blocked)
)

// evaluate classifies an entity and computes its in-class key
// (guarantee: larger deficit wins; normal/idle: smaller key wins).
func (s *ContainerScheduler) evaluate(e *Entity, now sim.Time) (schedClass, float64) {
	cls := classNone
	bestDeficit := sim.Duration(0)
	bestKey := math.Inf(1)
	consider := func(c *rc.Container) {
		if c.Destroyed() || s.throttled(c) {
			return
		}
		if d := s.pathDeficit(c, now); d > 0 {
			if cls > classGuarantee {
				cls = classGuarantee
			}
			if d > bestDeficit {
				bestDeficit = d
			}
			return
		}
		w := weight(c)
		if w > 0 {
			if cls > classNormal {
				cls = classNormal
			}
			if k := s.decayedOf(c, now) / w; k < bestKey {
				bestKey = k
			}
		} else {
			if cls > classIdle {
				cls = classIdle
			}
			if k := s.decayedOf(c, now); k < bestKey {
				bestKey = k
			}
		}
	}
	if e.DynamicBinding != nil {
		// Exact pending-work binding (kernel network threads, §4.7): the
		// thread is classed by the containers it is about to serve, plus
		// its current resource binding for in-progress work.
		for _, c := range e.DynamicBinding() {
			if c != nil {
				consider(c)
			}
		}
		if e.Resource != nil {
			consider(e.Resource)
		}
		if cls == classNone {
			return classNone, 0
		}
	} else {
		if len(e.binding) == 0 {
			if e.Fallback == nil || e.Fallback.Destroyed() {
				panic(fmt.Sprintf("sched: runnable entity %v has an empty scheduler binding and no fallback; the kernel must bind threads to a container", e))
			}
			consider(e.Fallback)
		}
		for _, b := range e.binding {
			consider(b.c)
		}
	}
	switch cls {
	case classGuarantee:
		return cls, -bestDeficit.Seconds() // negate: smaller key = bigger deficit
	case classNormal, classIdle:
		return cls, bestKey
	default:
		return classNone, 0
	}
}

// Pick implements Scheduler.
func (s *ContainerScheduler) Pick(now sim.Time) *Entity {
	s.rollWindow(now)
	s.sawThrottled = false
	best, bestClass := s.pickIn(s.set.runnable, now)
	if best != nil && bestClass == classNormal && s.policy == PolicyLottery {
		best = s.lotteryNormal(now)
	}
	if best != nil {
		best.lastRun = now
	}
	return best
}

// pickIn finds the best eligible entity in one seq-ordered runnable list
// (the shared list, or a per-CPU shard). Candidate order matters: the
// near-equal-key tie-break is not transitive, so both paths must iterate
// in the same seq order a full-set scan would.
func (s *ContainerScheduler) pickIn(list []*Entity, now sim.Time) (*Entity, schedClass) {
	var best *Entity
	bestClass := classNone
	var bestKey float64
	for _, e := range list {
		if e.onCPU {
			continue
		}
		s.prune(e, now)
		cls, key := s.evaluate(e, now)
		if cls == classNone {
			s.sawThrottled = true
			continue
		}
		if best == nil || cls < bestClass || (cls == bestClass && less(key, e, bestKey, best)) {
			best, bestClass, bestKey = e, cls, key
		}
	}
	return best, bestClass
}

// lotteryNormal re-selects among all normal-class candidates by lottery.
func (s *ContainerScheduler) lotteryNormal(now sim.Time) *Entity {
	var cands []*Entity
	var tickets []float64
	for _, e := range s.set.runnable {
		if e.onCPU {
			continue
		}
		cls, _ := s.evaluate(e, now)
		if cls != classNormal {
			continue
		}
		if t := s.tickets(e, now); t > 0 {
			cands = append(cands, e)
			tickets = append(tickets, t)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return s.lotteryPick(cands, tickets)
}

// Charge implements Scheduler: decayed usage lands on the charged leaf
// container. Window usage and cap budgets need no update here — they are
// derived from the container's own accounting (rc.ChargeCPU), which the
// kernel performs for every slice.
func (s *ContainerScheduler) Charge(e *Entity, c *rc.Container, d sim.Duration, now sim.Time) {
	if c == nil {
		return
	}
	s.registerChain(c)
	st := s.state(c)
	s.decayedOf(c, now)
	st.decayed += d.Seconds()
}

// Bind implements Scheduler: the entity's resource binding moves to c and
// c joins the scheduler binding (§4.3: the scheduler binding is set
// implicitly by the system's observation of the thread's resource
// bindings).
func (s *ContainerScheduler) Bind(e *Entity, c *rc.Container, now sim.Time) {
	if c == nil {
		panic("sched: Bind to nil container")
	}
	e.Resource = c
	s.registerChain(c)
	for i := range e.binding {
		if e.binding[i].c == c {
			e.binding[i].last = now
			s.prune(e, now)
			return
		}
	}
	e.binding = append(e.binding, bindingEntry{c: c, last: now})
	s.prune(e, now)
}

// prune drops scheduler-binding entries the thread has not served
// recently, and destroyed containers. The current resource binding is
// always kept.
func (s *ContainerScheduler) prune(e *Entity, now sim.Time) {
	if s.DisablePruning {
		// Still drop destroyed containers; scheduling over freed
		// principals would be a use-after-free in a real kernel.
		kept := e.binding[:0]
		for _, b := range e.binding {
			if !b.c.Destroyed() {
				kept = append(kept, b)
			}
		}
		e.binding = kept
		return
	}
	var newest bindingEntry
	kept := e.binding[:0]
	for _, b := range e.binding {
		if b.c.Destroyed() {
			continue
		}
		if newest.c == nil || b.last > newest.last {
			newest = b
		}
		if b.c == e.Resource || now.Sub(b.last) <= s.PruneAge {
			kept = append(kept, b)
		}
	}
	if len(kept) == 0 && newest.c != nil {
		// Never prune a binding to empty: a thread idle longer than the
		// pruning age keeps its most recent live binding until it is
		// rebound (threads always have *some* resource context, §4.2).
		kept = append(kept, newest)
	}
	e.binding = kept
}

// ResetBinding implements Scheduler (§4.6): the scheduler binding
// collapses to the current resource binding only.
func (s *ContainerScheduler) ResetBinding(e *Entity) {
	if e.Resource == nil {
		e.binding = e.binding[:0]
		return
	}
	e.binding = append(e.binding[:0], bindingEntry{c: e.Resource, last: e.lastRun})
}

// NextRelease implements Scheduler: throttled entities become eligible
// when the window rolls.
func (s *ContainerScheduler) NextRelease(now sim.Time) (sim.Time, bool) {
	if !s.sawThrottled {
		return 0, false
	}
	return s.windowStart.Add(s.Window), true
}

// RunnableCount implements Scheduler: the current run-queue depth.
func (s *ContainerScheduler) RunnableCount() int { return s.set.runnableCount() }

// SliceBudget returns how much CPU a slice charged to c may consume
// before hitting a limit budget in the current window. The kernel clips
// slices to this value so hard caps are enforced almost exactly (§5.6
// "the CPU limits are enforced almost exactly"). A zero (or negative)
// result means the container is out of budget: the kernel must not run
// work charged to it until the window rolls — even if the thread holding
// that work has scheduling standing through other binding containers.
func (s *ContainerScheduler) SliceBudget(c *rc.Container, now sim.Time) sim.Duration {
	s.rollWindow(now)
	budget := s.quantum
	for _, p := range c.Ancestors() {
		st := s.attrs(p)
		if st.capBudget < 0 {
			continue
		}
		rem := st.capBudget - s.windowUsage(p)
		if rem < budget {
			budget = rem
		}
	}
	if budget < 0 {
		return 0
	}
	return budget
}

// NextWindow returns when the current enforcement window rolls and cap
// budgets replenish.
func (s *ContainerScheduler) NextWindow(now sim.Time) sim.Time {
	s.rollWindow(now)
	return s.windowStart.Add(s.Window)
}

// SliceBudgeter is implemented by schedulers that can bound slice length
// for cap enforcement; the kernel consults it when present.
type SliceBudgeter interface {
	SliceBudget(c *rc.Container, now sim.Time) sim.Duration
	NextWindow(now sim.Time) sim.Time
}
