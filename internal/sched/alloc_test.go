package sched

import (
	"fmt"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Pick is the scheduler's innermost loop: once ancestor chains and the
// per-container attribute caches are warm, a scheduling decision must not
// allocate.
func TestContainerPickNoAllocs(t *testing.T) {
	s := NewContainerScheduler()
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		e := &Entity{ID: uint64(i + 1)}
		s.Register(e)
		parent := rc.MustNew(nil, rc.FixedShare, fmt.Sprintf("svc%d", i),
			rc.Attributes{Share: 0.05, Limit: 0.5})
		leaf := rc.MustNew(parent, rc.TimeShare, fmt.Sprintf("conn%d", i),
			rc.Attributes{Priority: 1 + i%5})
		s.Bind(e, leaf, now)
		s.SetRunnable(e, true)
	}
	// Warm caches (ancestor chains, attrs, window snapshots).
	if s.Pick(now) == nil {
		t.Fatal("no entity picked")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if s.Pick(now) == nil {
			t.Fatal("no entity picked")
		}
	})
	if allocs != 0 {
		t.Fatalf("ContainerScheduler.Pick allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDecayPickNoAllocs(t *testing.T) {
	s := NewDecayScheduler()
	now := sim.Time(0)
	for i := 0; i < 8; i++ {
		e := &Entity{ID: uint64(i + 1), Proc: NewProcPrincipal("p")}
		s.Register(e)
		s.SetRunnable(e, true)
	}
	s.Pick(now)
	allocs := testing.AllocsPerRun(200, func() {
		if s.Pick(now) == nil {
			t.Fatal("no entity picked")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecayScheduler.Pick allocates %.1f objects/op, want 0", allocs)
	}
}
