// Package sched implements the CPU schedulers of the reproduction:
//
//   - DecayScheduler: a classic 4.3BSD-style decay-usage time-sharing
//     scheduler whose resource principals are processes. This is the
//     "unmodified system" baseline, and it deliberately reproduces the
//     misaccounting the paper exposes (interrupt-level work is charged to
//     whatever principal happens to be running).
//
//   - ContainerScheduler: the paper's multi-level scheduler (§4.3, §5.1),
//     whose resource principals are resource containers. Fixed-share
//     containers receive CPU guarantees and hard caps enforced over a
//     sliding window; time-share leaf containers share the remainder
//     weighted by numeric priority with decayed usage; priority-0
//     containers form an idle class that runs only when nothing else can.
//     Threads are scheduled by their scheduler binding — the set of
//     containers they have recently served — which the scheduler prunes
//     periodically and applications can reset explicitly.
//
// Both schedulers schedule Entities (kernel threads). The simulated
// kernel (internal/kernel) owns the CPU execution loop; the scheduler
// only answers "who runs next" and maintains per-principal usage state.
package sched

import (
	"fmt"
	"sort"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// DefaultQuantum is the maximum CPU slice between scheduling decisions.
const DefaultQuantum = sim.Millisecond

// Entity is the schedulable unit: one kernel thread. The kernel creates
// one Entity per thread and registers it with the active scheduler.
type Entity struct {
	// ID uniquely identifies the entity; Name is diagnostic.
	ID   uint64
	Name string

	// Owner is an opaque back-pointer for the kernel (the owning thread).
	Owner any

	// Fallback is the principal of last resort (the process default
	// container): it is scheduled against when every container in the
	// thread's binding has been destroyed before the thread could be
	// rebound — e.g. a connection torn down while the thread's next work
	// item was already queued.
	Fallback *rc.Container

	// DynamicBinding, when set, supplies the scheduler binding on demand
	// instead of the observed-bindings-with-pruning mechanism. The kernel
	// network thread uses it so that its scheduling class reflects
	// exactly the containers with pending protocol work (§4.7) — pending
	// only priority-0 traffic means idle class, with no staleness window.
	DynamicBinding func() []*rc.Container

	// Proc is the classic scheduler's principal (the owning process).
	// It is required by DecayScheduler and ignored by ContainerScheduler.
	Proc *ProcPrincipal

	// Resource is the thread's current resource binding (§4.2): the
	// container that subsequent consumption is charged to. It is
	// maintained by the kernel via Scheduler.Bind.
	Resource *rc.Container

	runnable bool
	// onCPU marks the entity as currently executing on some processor;
	// Pick skips it so one thread never runs on two CPUs (SMP).
	onCPU   bool
	lastRun sim.Time
	seq     uint64 // registration order, deterministic tie-break
	setIdx  int    // position in entitySet.entities; -1 when unregistered
	// home is the entity's per-CPU run queue when sharding is enabled
	// (see entitySet.enablePerCPU); work stealing migrates it.
	home int
	// lastCPU is the processor the entity last ran on (-1 before its
	// first slice); the kernel uses it to charge the cache-affinity
	// migration cost under per-CPU scheduling.
	lastCPU int

	// binding is the scheduler binding (§4.3): the containers the thread
	// has recently had a resource binding to, with last-bound times.
	binding []bindingEntry
}

type bindingEntry struct {
	c    *rc.Container
	last sim.Time
}

// Runnable reports whether the entity is currently runnable.
func (e *Entity) Runnable() bool { return e.runnable }

// SetOnCPU marks the entity as (not) executing; the kernel's per-CPU
// dispatch loop maintains it.
func (e *Entity) SetOnCPU(v bool) { e.onCPU = v }

// OnCPU reports whether the entity is currently executing.
func (e *Entity) OnCPU() bool { return e.onCPU }

// HasLiveBinding reports whether any container in the scheduler binding
// is still alive. A thread whose every recent activity has been torn down
// needs a fresh resource binding before it can be scheduled again.
func (e *Entity) HasLiveBinding() bool {
	for _, b := range e.binding {
		if !b.c.Destroyed() {
			return true
		}
	}
	return false
}

// Binding returns the containers in the entity's scheduler binding.
func (e *Entity) Binding() []*rc.Container {
	out := make([]*rc.Container, len(e.binding))
	for i, b := range e.binding {
		out[i] = b.c
	}
	return out
}

// LastCPU returns the processor the entity last ran on, or -1 if it has
// never run.
func (e *Entity) LastCPU() int { return e.lastCPU }

// NoteRanOn records the processor about to run the entity; the kernel's
// dispatch path maintains it.
func (e *Entity) NoteRanOn(cpu int) { e.lastCPU = cpu }

// Home returns the entity's per-CPU run-queue assignment (meaningful
// only when per-CPU scheduling is enabled).
func (e *Entity) Home() int { return e.home }

// String identifies the entity for diagnostics.
func (e *Entity) String() string { return fmt.Sprintf("entity(%d %s)", e.ID, e.Name) }

// ProcPrincipal is the classic scheduler's resource principal: one per
// process. CPU usage decays exponentially, as in the 4.3BSD scheduler, so
// long-run shares equalize among always-runnable processes.
type ProcPrincipal struct {
	Name string
	// Nice shifts the principal's precedence; positive nice yields CPU.
	Nice int

	decayed   float64 // decayed CPU usage, in seconds
	lastDecay sim.Time
	total     sim.Duration // undecayed total, for accounting checks
}

// NewProcPrincipal returns a principal with zero usage.
func NewProcPrincipal(name string) *ProcPrincipal { return &ProcPrincipal{Name: name} }

// TotalCPU returns the undecayed total CPU charged to the principal,
// including any interrupt-level time misaccounted to it.
func (p *ProcPrincipal) TotalCPU() sim.Duration { return p.total }

// Scheduler is the interface the kernel CPU loop drives. Implementations
// are not safe for concurrent use; the simulation is single-goroutine.
type Scheduler interface {
	// Register adds an entity to the scheduler's entity set.
	Register(e *Entity)
	// Unregister removes the entity (thread exit).
	Unregister(e *Entity)
	// SetRunnable marks the entity runnable or blocked.
	SetRunnable(e *Entity, runnable bool)
	// Pick returns the entity to run next, or nil if none is eligible
	// (all blocked, or all throttled by CPU limits).
	Pick(now sim.Time) *Entity
	// Charge accounts d of CPU consumed by e, charged to container c
	// (nil when no container is involved, e.g. the unmodified baseline).
	Charge(e *Entity, c *rc.Container, d sim.Duration, now sim.Time)
	// Bind records that e's resource binding changed to c (§4.2). The
	// container scheduler uses this to maintain the scheduler binding.
	Bind(e *Entity, c *rc.Container, now sim.Time)
	// ResetBinding restricts e's scheduler binding to its current
	// resource binding (§4.6 "reset the scheduler binding").
	ResetBinding(e *Entity)
	// Quantum is the maximum slice between scheduling decisions.
	Quantum() sim.Duration
	// NextRelease returns the earliest future time at which a currently
	// throttled entity may become eligible again, if any. The kernel
	// re-dispatches at that time when Pick returned nil but runnable
	// threads exist.
	NextRelease(now sim.Time) (sim.Time, bool)
	// RunnableCount returns the current run-queue depth (runnable
	// entities, including any on CPU) — sampled by the telemetry usage
	// timeline as the machine's scheduler backlog.
	RunnableCount() int
}

// entitySet is the shared registered-entity bookkeeping. Alongside the
// full membership slice it maintains the runnable subset, kept ordered by
// registration seq: Pick iterates only runnable entities, and the seq
// order reproduces exactly the candidate order of a scan over the full
// set, which the near-equal-key tie-break depends on.
type entitySet struct {
	entities []*Entity
	runnable []*Entity // runnable entities, ascending by seq
	nextSeq  uint64

	// Per-CPU sharding (enablePerCPU): each shard mirrors the subset of
	// the runnable list homed on that CPU, in the same seq order. The
	// global list stays authoritative — RunnableCount and the shared
	// Pick path read it — while PickFor scans only one shard.
	shards   [][]*Entity
	steal    [][]int // per-CPU victim order, a seeded permutation
	nextHome int
}

// runnableCount returns the size of the runnable subset.
func (s *entitySet) runnableCount() int { return len(s.runnable) }

// perCPU reports whether per-CPU sharding is enabled.
func (s *entitySet) perCPU() bool { return len(s.shards) > 0 }

// insertSeq places e into a seq-ordered list; removeSeq takes it out.
func insertSeq(list []*Entity, e *Entity) []*Entity {
	i := sort.Search(len(list), func(i int) bool { return list[i].seq >= e.seq })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

func removeSeq(list []*Entity, e *Entity) []*Entity {
	i := sort.Search(len(list), func(i int) bool { return list[i].seq >= e.seq })
	if i < len(list) && list[i] == e {
		copy(list[i:], list[i+1:])
		list[len(list)-1] = nil
		list = list[:len(list)-1]
	}
	return list
}

// enablePerCPU splits the runnable set into ncpus run queues. Homes are
// assigned round-robin in registration order (existing entities are
// re-homed by their registration seq, so enabling is deterministic no
// matter when it happens), and each CPU gets a seeded random victim
// order for work stealing — a fixed permutation, so steals are
// deterministic too.
func (s *entitySet) enablePerCPU(ncpus int, rng *sim.RNG) {
	if ncpus < 1 {
		ncpus = 1
	}
	s.shards = make([][]*Entity, ncpus)
	s.steal = make([][]int, ncpus)
	for c := 0; c < ncpus; c++ {
		order := make([]int, 0, ncpus-1)
		for v := 0; v < ncpus; v++ {
			if v != c {
				order = append(order, v)
			}
		}
		// Fisher–Yates with the seeded stream: every CPU probes victims
		// in its own fixed order, spreading contention instead of having
		// all thieves hammer CPU 0 first.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		s.steal[c] = order
	}
	for _, e := range s.entities {
		e.home = int(e.seq % uint64(ncpus))
	}
	s.nextHome = int(s.nextSeq % uint64(ncpus))
	for _, e := range s.runnable {
		s.shards[e.home] = insertSeq(s.shards[e.home], e)
	}
}

// migrate moves a stolen entity's home queue to the thief CPU.
func (s *entitySet) migrate(e *Entity, to int) {
	if !s.perCPU() || e.home == to {
		return
	}
	if e.runnable && s.contains(e) {
		s.shards[e.home] = removeSeq(s.shards[e.home], e)
		s.shards[to] = insertSeq(s.shards[to], e)
	}
	e.home = to
}

func (s *entitySet) register(e *Entity) {
	e.seq = s.nextSeq
	s.nextSeq++
	e.setIdx = len(s.entities)
	e.lastCPU = -1
	if s.perCPU() {
		e.home = s.nextHome
		s.nextHome = (s.nextHome + 1) % len(s.shards)
	}
	s.entities = append(s.entities, e)
	if e.runnable {
		e.runnable = false
		s.setRunnable(e, true)
	}
}

// contains reports whether e is currently registered in this set.
func (s *entitySet) contains(e *Entity) bool {
	i := e.setIdx
	return i >= 0 && i < len(s.entities) && s.entities[i] == e
}

// unregister removes e in O(1) by swapping the last entity into its slot.
// Membership order does not matter — scheduling order is defined by the
// seq-sorted runnable list, never by entities order.
func (s *entitySet) unregister(e *Entity) {
	if !s.contains(e) {
		return
	}
	s.setRunnable(e, false)
	i := e.setIdx
	last := len(s.entities) - 1
	s.entities[i] = s.entities[last]
	s.entities[i].setIdx = i
	s.entities[last] = nil
	s.entities = s.entities[:last]
	e.setIdx = -1
}

// setRunnable maintains the runnable flag and, for registered entities,
// the seq-ordered runnable list. Redundant transitions are no-ops (the
// kernel calls SetRunnable idempotently).
func (s *entitySet) setRunnable(e *Entity, v bool) {
	if e.runnable == v {
		return
	}
	e.runnable = v
	if !s.contains(e) {
		return
	}
	if v {
		s.runnable = insertSeq(s.runnable, e)
		if s.perCPU() {
			s.shards[e.home] = insertSeq(s.shards[e.home], e)
		}
		return
	}
	s.runnable = removeSeq(s.runnable, e)
	if s.perCPU() {
		s.shards[e.home] = removeSeq(s.shards[e.home], e)
	}
}
