package sched

import (
	"rescon/internal/sim"
)

// Per-CPU run queues: instead of every processor scanning one global
// runnable list per scheduling decision, each entity is homed on a run
// queue and a processor's Pick scans only its own queue. An idle
// processor steals: it probes the other queues in a seeded, per-CPU
// fixed permutation and migrates the first eligible entity it finds to
// its own queue. Both the home assignment (round-robin by registration
// order) and the steal order are pure functions of (ncpus, seed), so a
// run is bit-for-bit deterministic — the point of this simulator.
//
// Sharding is strictly opt-in (Kernel.EnablePerCPUSched): the default
// shared-queue path is untouched, byte-identical to the historical
// behavior, and remains what the single-CPU experiment sweeps use.

// PerCPUScheduler is implemented by schedulers that can partition their
// runnable set into per-CPU run queues with deterministic work stealing.
type PerCPUScheduler interface {
	Scheduler
	// EnablePerCPU splits the runnable set into ncpus queues; rng seeds
	// the per-CPU steal orders. Entities registered before or after are
	// homed round-robin by registration order.
	EnablePerCPU(ncpus int, rng *sim.RNG)
	// PerCPUEnabled reports whether sharding is active.
	PerCPUEnabled() bool
	// PickFor returns the entity CPU cpu should run next: the best
	// candidate on its own queue, else the first steal the victim
	// permutation yields. Falls back to the shared Pick when sharding is
	// off.
	PickFor(cpu int, now sim.Time) *Entity
}

// EnablePerCPU implements PerCPUScheduler.
func (s *DecayScheduler) EnablePerCPU(ncpus int, rng *sim.RNG) { s.set.enablePerCPU(ncpus, rng) }

// PerCPUEnabled implements PerCPUScheduler.
func (s *DecayScheduler) PerCPUEnabled() bool { return s.set.perCPU() }

// PickFor implements PerCPUScheduler.
func (s *DecayScheduler) PickFor(cpu int, now sim.Time) *Entity {
	if !s.set.perCPU() {
		return s.Pick(now)
	}
	best := s.pickIn(s.set.shards[cpu], now)
	if best == nil {
		for _, v := range s.set.steal[cpu] {
			if best = s.pickIn(s.set.shards[v], now); best != nil {
				s.set.migrate(best, cpu)
				break
			}
		}
	}
	if best != nil {
		best.lastRun = now
	}
	return best
}

// EnablePerCPU implements PerCPUScheduler.
func (s *ContainerScheduler) EnablePerCPU(ncpus int, rng *sim.RNG) { s.set.enablePerCPU(ncpus, rng) }

// PerCPUEnabled implements PerCPUScheduler.
func (s *ContainerScheduler) PerCPUEnabled() bool { return s.set.perCPU() }

// PickFor implements PerCPUScheduler. The lottery leaf policy needs the
// global candidate set for its ticket draw, so it always uses the shared
// path.
func (s *ContainerScheduler) PickFor(cpu int, now sim.Time) *Entity {
	if !s.set.perCPU() || s.policy == PolicyLottery {
		return s.Pick(now)
	}
	s.rollWindow(now)
	s.sawThrottled = false
	best, _ := s.pickIn(s.set.shards[cpu], now)
	if best == nil {
		for _, v := range s.set.steal[cpu] {
			if best, _ = s.pickIn(s.set.shards[v], now); best != nil {
				s.set.migrate(best, cpu)
				break
			}
		}
	}
	if best != nil {
		best.lastRun = now
	}
	return best
}
