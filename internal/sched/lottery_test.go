package sched

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func TestLotteryProportionalShares(t *testing.T) {
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 7)
	ca := rc.MustNew(nil, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	cb := rc.MustNew(nil, rc.TimeShare, "b", rc.Attributes{Priority: 2})
	a := leafEntity(1, ca, s)
	b := leafEntity(2, cb, s)
	got := drive(s, 30*sim.Second)
	within(t, frac(got[a], 30*sim.Second), 1.0/3.0, 0.05, "1-ticket share")
	within(t, frac(got[b], 30*sim.Second), 2.0/3.0, 0.05, "2-ticket share")
}

func TestLotteryRespectsCaps(t *testing.T) {
	// Lottery only governs the normal class; caps still bind.
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 7)
	capped := rc.MustNew(nil, rc.FixedShare, "capped", rc.Attributes{Limit: 0.2})
	leaf := rc.MustNew(capped, rc.TimeShare, "leaf", rc.Attributes{Priority: 10})
	free := rc.MustNew(nil, rc.TimeShare, "free", rc.Attributes{Priority: 1})
	c := leafEntity(1, leaf, s)
	f := leafEntity(2, free, s)
	got := drive(s, 20*sim.Second)
	within(t, frac(got[c], 20*sim.Second), 0.2, 0.02, "capped share under lottery")
	within(t, frac(got[f], 20*sim.Second), 0.8, 0.02, "free share under lottery")
}

func TestLotteryRespectsGuarantees(t *testing.T) {
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 7)
	g := rc.MustNew(nil, rc.FixedShare, "guest", rc.Attributes{Share: 0.6})
	gl := rc.MustNew(g, rc.TimeShare, "gwork", rc.Attributes{Priority: 1})
	ts := rc.MustNew(nil, rc.TimeShare, "ts", rc.Attributes{Priority: 50})
	ge := leafEntity(1, gl, s)
	leafEntity(2, ts, s)
	got := drive(s, 20*sim.Second)
	within(t, frac(got[ge], 20*sim.Second), 0.6, 0.03, "guarantee under lottery")
}

func TestLotteryIdleClassStillStarves(t *testing.T) {
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 7)
	normal := rc.MustNew(nil, rc.TimeShare, "normal", rc.Attributes{Priority: 1})
	idle := rc.MustNew(nil, rc.TimeShare, "idle", rc.Attributes{Priority: 0})
	leafEntity(1, normal, s)
	i := leafEntity(2, idle, s)
	got := drive(s, 5*sim.Second)
	if got[i] != 0 {
		t.Fatalf("idle-class ran %v under lottery with normal work pending", got[i])
	}
}

func TestLotteryDeterministic(t *testing.T) {
	run := func() map[*Entity]sim.Duration {
		s := NewContainerScheduler()
		s.SetLeafPolicy(PolicyLottery, 99)
		ca := rc.MustNew(nil, rc.TimeShare, "a", rc.Attributes{Priority: 3})
		cb := rc.MustNew(nil, rc.TimeShare, "b", rc.Attributes{Priority: 5})
		leafEntity(1, ca, s)
		leafEntity(2, cb, s)
		return drive(s, 2*sim.Second)
	}
	g1, g2 := run(), run()
	var v1, v2 []sim.Duration
	for _, v := range g1 {
		v1 = append(v1, v)
	}
	for _, v := range g2 {
		v2 = append(v2, v)
	}
	if len(v1) != len(v2) {
		t.Fatal("different entity counts")
	}
	var s1, s2 sim.Duration
	for i := range v1 {
		s1 += v1[i]
		s2 += v2[i]
	}
	if s1 != s2 {
		t.Fatalf("lottery not deterministic: totals %v vs %v", s1, s2)
	}
}

func TestLotteryManyEntitiesFairness(t *testing.T) {
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 3)
	var es []*Entity
	for i := 0; i < 8; i++ {
		c := rc.MustNew(nil, rc.TimeShare, "c", rc.Attributes{Priority: 1})
		es = append(es, leafEntity(uint64(i+1), c, s))
	}
	got := drive(s, 40*sim.Second)
	for i, e := range es {
		within(t, frac(got[e], 40*sim.Second), 0.125, 0.03, "entity "+string(rune('0'+i)))
	}
}
