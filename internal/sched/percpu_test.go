package sched

import (
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

func newPerCPUDecay(ncpus int, seed int64) (*DecayScheduler, []*Entity) {
	s := NewDecayScheduler()
	var es []*Entity
	for i := 0; i < ncpus*2; i++ {
		e := &Entity{ID: uint64(i), Name: "e", Proc: NewProcPrincipal("p")}
		s.Register(e)
		s.SetRunnable(e, true)
		es = append(es, e)
	}
	s.EnablePerCPU(ncpus, sim.NewRNG(seed))
	return s, es
}

func TestPerCPUHomeAssignmentRoundRobin(t *testing.T) {
	s, es := newPerCPUDecay(4, 1)
	if !s.PerCPUEnabled() {
		t.Fatal("PerCPUEnabled false after EnablePerCPU")
	}
	for i, e := range es {
		if e.Home() != i%4 {
			t.Fatalf("entity %d homed on %d, want %d", i, e.Home(), i%4)
		}
	}
	// Entities registered after enabling continue the round-robin.
	late := &Entity{ID: 100, Name: "late", Proc: NewProcPrincipal("p")}
	s.Register(late)
	if late.Home() != len(es)%4 {
		t.Fatalf("late entity homed on %d, want %d", late.Home(), len(es)%4)
	}
}

func TestPerCPUStealOrderDeterministic(t *testing.T) {
	s1, _ := newPerCPUDecay(8, 7)
	s2, _ := newPerCPUDecay(8, 7)
	s3, _ := newPerCPUDecay(8, 8)
	differs := false
	for c := 0; c < 8; c++ {
		o1, o2, o3 := s1.set.steal[c], s2.set.steal[c], s3.set.steal[c]
		if len(o1) != 7 {
			t.Fatalf("cpu %d steal order has %d victims, want 7", c, len(o1))
		}
		seen := map[int]bool{}
		for i, v := range o1 {
			if v == c {
				t.Fatalf("cpu %d lists itself as a victim", c)
			}
			if seen[v] {
				t.Fatalf("cpu %d steal order repeats victim %d", c, v)
			}
			seen[v] = true
			if v != o2[i] {
				t.Fatalf("same seed produced different steal orders for cpu %d", c)
			}
			if v != o3[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical steal orders on every CPU")
	}
}

func TestPerCPUPickForPrefersHomeQueue(t *testing.T) {
	s, es := newPerCPUDecay(4, 3)
	got := s.PickFor(1, 0)
	if got == nil || got.Home() != 1 {
		t.Fatalf("PickFor(1) returned %v, want an entity homed on 1", got)
	}
	// With every entity on CPU 1 blocked, PickFor(1) steals and migrates.
	for _, e := range es {
		if e.Home() == 1 {
			s.SetRunnable(e, false)
		}
	}
	stolen := s.PickFor(1, 0)
	if stolen == nil {
		t.Fatal("PickFor(1) found nothing to steal")
	}
	if stolen.Home() != 1 {
		t.Fatalf("stolen entity homed on %d, want migrated to 1", stolen.Home())
	}
	victim := s.set.steal[1][0]
	if int(stolen.seq%4) != victim {
		t.Fatalf("stole from cpu %d, want first victim %d", stolen.seq%4, victim)
	}
}

func TestPerCPUMigrateMaintainsShards(t *testing.T) {
	s, es := newPerCPUDecay(2, 5)
	e := es[0] // homed on 0
	s.set.migrate(e, 1)
	if e.Home() != 1 {
		t.Fatalf("home %d after migrate, want 1", e.Home())
	}
	for _, x := range s.set.shards[0] {
		if x == e {
			t.Fatal("migrated entity still on shard 0")
		}
	}
	found := false
	for i, x := range s.set.shards[1] {
		if x == e {
			found = true
			if i > 0 && s.set.shards[1][i-1].seq > e.seq {
				t.Fatal("shard 1 not seq-ordered after migrate")
			}
		}
	}
	if !found {
		t.Fatal("migrated entity missing from shard 1")
	}
	// Blocking and waking keeps it on the new home.
	s.SetRunnable(e, false)
	s.SetRunnable(e, true)
	if e.Home() != 1 {
		t.Fatalf("home %d after block/wake, want 1", e.Home())
	}
}

func TestPerCPUSkipsOnCPUEntities(t *testing.T) {
	s, es := newPerCPUDecay(2, 9)
	for _, e := range es {
		if e.Home() == 0 {
			e.SetOnCPU(true)
		}
	}
	got := s.PickFor(0, 0)
	if got == nil {
		t.Fatal("PickFor(0) returned nil with runnable entities on other queues")
	}
	if got.OnCPU() {
		t.Fatalf("PickFor returned an on-CPU entity %v", got)
	}
}

func TestPerCPUGlobalRunnableStaysAuthoritative(t *testing.T) {
	s, es := newPerCPUDecay(4, 2)
	if got := s.RunnableCount(); got != len(es) {
		t.Fatalf("RunnableCount %d, want %d", got, len(es))
	}
	s.SetRunnable(es[3], false)
	if got := s.RunnableCount(); got != len(es)-1 {
		t.Fatalf("RunnableCount %d after block, want %d", got, len(es)-1)
	}
	// The shared Pick still works (it reads the global list).
	if s.Pick(0) == nil {
		t.Fatal("shared Pick returned nil with runnable entities")
	}
}

func TestPerCPUContainerLotteryFallsBack(t *testing.T) {
	s := NewContainerScheduler()
	s.SetLeafPolicy(PolicyLottery, 1)
	c := rc.MustNew(nil, rc.TimeShare, "a", rc.Attributes{Priority: 1})
	e := leafEntity(1, c, s)
	s.EnablePerCPU(4, sim.NewRNG(2))
	// PickFor on a CPU whose shard is empty must still find the entity:
	// the lottery draws from the global candidate set.
	for c := 0; c < 4; c++ {
		if got := s.PickFor(c, 0); got != e {
			t.Fatalf("lottery PickFor(%d) = %v, want %v", c, got, e)
		}
	}
}
