package sched

// Randomized invariant tests: build random container hierarchies and
// workloads, drive the scheduler, and check the §4 contracts hold for
// every configuration — caps never exceeded, guarantees met when the
// holder is saturated, work conservation, idle-class starvation.

import (
	"fmt"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

type fuzzCase struct {
	ents    []*Entity
	limits  map[*rc.Container]float64 // capped subtrees
	shares  map[*rc.Container]float64 // guaranteed subtrees
	idle    map[*Entity]bool
	nNormal int
}

// buildRandomCase creates 2–6 top-level groups, each either capped,
// guaranteed, or plain, with 1–3 leaf entities.
func buildRandomCase(rng *sim.RNG, s *ContainerScheduler) *fuzzCase {
	fc := &fuzzCase{
		limits: map[*rc.Container]float64{},
		shares: map[*rc.Container]float64{},
		idle:   map[*Entity]bool{},
	}
	nGroups := 2 + rng.Intn(5)
	shareLeft := 0.9
	var id uint64
	for g := 0; g < nGroups; g++ {
		kind := rng.Intn(3)
		var parent *rc.Container
		switch kind {
		case 0: // capped
			limit := 0.05 + 0.3*rng.Float64()
			parent = rc.MustNew(nil, rc.FixedShare, fmt.Sprintf("cap-%d", g),
				rc.Attributes{Limit: limit})
			fc.limits[parent] = limit
		case 1: // guaranteed
			share := 0.05 + 0.25*rng.Float64()
			if share > shareLeft {
				share = shareLeft / 2
			}
			if share < 0.01 {
				kind = 2
			} else {
				shareLeft -= share
				parent = rc.MustNew(nil, rc.FixedShare, fmt.Sprintf("share-%d", g),
					rc.Attributes{Share: share})
				fc.shares[parent] = share
			}
		}
		nLeaves := 1 + rng.Intn(3)
		for l := 0; l < nLeaves; l++ {
			prio := rng.Intn(4) // 0..3; 0 = idle class (only for plain leaves)
			if parent != nil && prio == 0 {
				prio = 1
			}
			leaf := rc.MustNew(parent, rc.TimeShare, fmt.Sprintf("leaf-%d-%d", g, l),
				rc.Attributes{Priority: prio})
			id++
			e := &Entity{ID: id}
			s.Register(e)
			s.Bind(e, leaf, 0)
			s.SetRunnable(e, true)
			if prio == 0 && parent == nil {
				fc.idle[e] = true
			} else {
				fc.nNormal++
			}
			fc.ents = append(fc.ents, e)
		}
	}
	return fc
}

func TestSchedulerInvariantsRandomized(t *testing.T) {
	const total = 10 * sim.Second
	for trial := 0; trial < 25; trial++ {
		rng := sim.NewRNG(int64(1000 + trial))
		s := NewContainerScheduler()
		fc := buildRandomCase(rng, s)
		got := drive(s, total)

		var consumed sim.Duration
		for _, e := range fc.ents {
			consumed += got[e]
		}
		// Work conservation: with any unlimited runnable entity the
		// machine must not idle (beyond cap-window rounding).
		unlimitedRunnable := false
		for _, e := range fc.ents {
			c := e.Resource
			capped := false
			for p := c; p != nil; p = p.Parent() {
				if p.Attributes().Limit > 0 {
					capped = true
				}
			}
			if !capped {
				unlimitedRunnable = true
			}
		}
		if unlimitedRunnable && consumed < total*99/100 {
			t.Fatalf("trial %d: machine idled with unlimited work: %v of %v", trial, consumed, total)
		}

		// Caps: subtree usage never exceeds limit (+one window of slack).
		for c, limit := range fc.limits {
			used := c.Usage().CPU()
			budget := sim.Duration(limit*float64(total)) + s.Window
			if used > budget {
				t.Fatalf("trial %d: cap %0.2f exceeded: used %v of %v", trial, limit, used, total)
			}
		}

		// Guarantees: when the machine is fully consumed and shares are
		// feasible, each guaranteed subtree gets at least its share (with
		// 5% slack for windowing).
		if consumed >= total*99/100 {
			for c, share := range fc.shares {
				used := c.Usage().CPU()
				want := sim.Duration(share * float64(total) * 0.95)
				if used < want {
					t.Fatalf("trial %d: guarantee %.2f unmet: got %v of %v", trial, share, used, total)
				}
			}
		}

		// Idle class: starved whenever normal work saturates the machine.
		if fc.nNormal > 0 && consumed >= total*99/100 {
			for e := range fc.idle {
				if got[e] > total/100 {
					t.Fatalf("trial %d: idle-class entity got %v with normal work pending", trial, got[e])
				}
			}
		}
	}
}

func TestSchedulerInvariantsLottery(t *testing.T) {
	const total = 5 * sim.Second
	for trial := 0; trial < 10; trial++ {
		rng := sim.NewRNG(int64(7000 + trial))
		s := NewContainerScheduler()
		s.SetLeafPolicy(PolicyLottery, int64(trial))
		fc := buildRandomCase(rng, s)
		got := drive(s, total)
		for c, limit := range fc.limits {
			used := c.Usage().CPU()
			if used > sim.Duration(limit*float64(total))+s.Window {
				t.Fatalf("trial %d: lottery broke cap %.2f: used %v", trial, limit, used)
			}
		}
		var consumed sim.Duration
		for _, e := range fc.ents {
			consumed += got[e]
		}
		if consumed >= total*99/100 {
			for c, share := range fc.shares {
				if c.Usage().CPU() < sim.Duration(share*float64(total)*0.95) {
					t.Fatalf("trial %d: lottery broke guarantee %.2f", trial, share)
				}
			}
		}
	}
}
