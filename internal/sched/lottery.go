package sched

import (
	"rescon/internal/rc"
	"rescon/internal/sim"
)

// LeafPolicy selects how time-share (normal-class) containers share the
// CPU left over by guarantees and caps. The paper positions containers
// as policy-agnostic (§4.3: "the container mechanism supports a large
// variety of scheduling models"); these are two of them.
type LeafPolicy int

const (
	// PolicyDecayUsage is the default: priority-weighted decayed-usage
	// time sharing, in the spirit of the 4.3BSD scheduler.
	PolicyDecayUsage LeafPolicy = iota
	// PolicyLottery is lottery scheduling [Waldspurger & Weihl, OSDI 94]:
	// each runnable entity holds tickets equal to the best weight among
	// its eligible binding containers, and a deterministic pseudo-random
	// draw picks the winner. Proportional share emerges statistically.
	PolicyLottery
)

// SetLeafPolicy selects the time-share policy; PolicyLottery draws from
// a deterministic stream seeded with seed.
func (s *ContainerScheduler) SetLeafPolicy(p LeafPolicy, seed int64) {
	s.policy = p
	s.rng = sim.NewRNG(seed)
}

// lotteryPick draws one entity from the normal-class candidates with
// probability proportional to its ticket count.
func (s *ContainerScheduler) lotteryPick(cands []*Entity, tickets []float64) *Entity {
	var total float64
	for _, t := range tickets {
		total += t
	}
	if total <= 0 {
		return cands[0]
	}
	draw := s.rng.Float64() * total
	for i, t := range tickets {
		draw -= t
		if draw < 0 {
			return cands[i]
		}
	}
	return cands[len(cands)-1]
}

// tickets returns the entity's ticket count: the largest weight among its
// eligible (live, unthrottled) binding containers.
func (s *ContainerScheduler) tickets(e *Entity, now sim.Time) float64 {
	best := 0.0
	consider := func(c *rc.Container) {
		if c == nil || c.Destroyed() || s.throttled(c) {
			return
		}
		if w := weight(c); w > best {
			best = w
		}
	}
	if e.DynamicBinding != nil {
		for _, c := range e.DynamicBinding() {
			consider(c)
		}
		consider(e.Resource)
		return best
	}
	if len(e.binding) == 0 {
		consider(e.Fallback)
		return best
	}
	for _, b := range e.binding {
		consider(b.c)
	}
	return best
}
