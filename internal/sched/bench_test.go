package sched

import (
	"fmt"
	"testing"

	"rescon/internal/rc"
	"rescon/internal/sim"
)

// Benchmarks for the scheduler hot path: Pick with a realistic number of
// runnable entities and binding sizes.

func benchScheduler(b *testing.B, nEntities, bindingSize int) {
	s := NewContainerScheduler()
	now := sim.Time(0)
	for i := 0; i < nEntities; i++ {
		e := &Entity{ID: uint64(i + 1)}
		s.Register(e)
		for j := 0; j < bindingSize; j++ {
			c := rc.MustNew(nil, rc.TimeShare, fmt.Sprintf("c%d-%d", i, j),
				rc.Attributes{Priority: 1 + (i+j)%5})
			s.Bind(e, c, now)
		}
		s.SetRunnable(e, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Pick(now)
		if e == nil {
			b.Fatal("no entity")
		}
		s.Charge(e, e.Resource, 100*sim.Microsecond, now)
		now = now.Add(100 * sim.Microsecond)
	}
}

func BenchmarkPick8Entities(b *testing.B)    { benchScheduler(b, 8, 1) }
func BenchmarkPick64Entities(b *testing.B)   { benchScheduler(b, 64, 1) }
func BenchmarkPickWideBindings(b *testing.B) { benchScheduler(b, 8, 16) }
func BenchmarkDecaySchedulerPick(b *testing.B) {
	s := NewDecayScheduler()
	now := sim.Time(0)
	for i := 0; i < 16; i++ {
		e := &Entity{ID: uint64(i + 1), Proc: NewProcPrincipal("p")}
		s.Register(e)
		s.SetRunnable(e, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.Pick(now)
		s.Charge(e, nil, 100*sim.Microsecond, now)
		now = now.Add(100 * sim.Microsecond)
	}
}
