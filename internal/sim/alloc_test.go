package sim

import "testing"

// Allocation guards for the event hot path: once the free list is warm,
// scheduling and firing events must not touch the heap. These pin the
// numbers so a regression (a new closure, a lost pooling path) fails
// loudly instead of silently re-inflating the inner loop.

func TestAfterStepNoAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the free list and the heap slice.
	e.After(Millisecond, fn)
	e.Step()
	allocs := testing.AllocsPerRun(200, func() {
		e.After(Millisecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+Step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCancelNoAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	e.After(Millisecond, fn).Cancel()
	allocs := testing.AllocsPerRun(200, func() {
		e.After(Millisecond, fn).Cancel()
	})
	if allocs != 0 {
		t.Fatalf("After+Cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// A long-lived ticker must not allocate per firing: Every creates one
// re-arming closure for the ticker's whole lifetime.
func TestTickerFiringNoAllocs(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	tk := e.Every(Millisecond, func() { ticks++ })
	if !e.Step() {
		t.Fatal("first tick did not fire")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if !e.Step() {
			t.Fatal("tick did not fire")
		}
	})
	if allocs != 0 {
		t.Fatalf("ticker firing allocates %.1f objects/op, want 0", allocs)
	}
	tk.Stop()
	if ticks < 201 {
		t.Fatalf("ticks %d, want at least 201", ticks)
	}
}

// Recycled event storage must not resurrect old handles: a handle taken
// before the storage was reused must stay dead.
func TestRecycledEventHandleStaysDead(t *testing.T) {
	e := NewEngine(1)
	first := e.After(Millisecond, func() {})
	e.Step()
	// The free list hands the same storage back for the next event.
	second := e.After(Millisecond, func() {})
	if first.Pending() {
		t.Fatal("fired handle reports pending after storage reuse")
	}
	if first.Cancel() {
		t.Fatal("fired handle cancelled the recycled event")
	}
	if !second.Pending() {
		t.Fatal("live handle lost")
	}
	if !second.Cancel() {
		t.Fatal("live handle failed to cancel")
	}
}
