package sim

import (
	"testing"
)

// The timing wheel spans 2^42 ns (~73 virtual minutes); events beyond it
// park in the far-future calendar and migrate into the wheel when the
// clock catches up. These tests drive exactly those paths: epoch
// crossings, calendar collisions, cancellations of parked events, and a
// clock jumped far ahead of the wheel base by RunUntil.

// TestEngineFarFutureOrdering mixes near events with events many wheel
// spans ahead and checks global firing order.
func TestEngineFarFutureOrdering(t *testing.T) {
	e := NewEngine(1)
	span := Duration(1) << farShift
	var fired []int
	add := func(d Duration, id int) {
		e.After(d, func() { fired = append(fired, id) })
	}
	add(5*span, 4)          // far future, epoch +5
	add(Millisecond, 0)     // wheel
	add(span+60*Second, 2)  // epoch +1
	add(span+60*Second, 3)  // same instant as id 2: FIFO by seq
	add(2*Millisecond, 1)   // wheel
	add(5*span+Second, 5)   // epoch +5, after id 4
	add((5+64)*span, 6)     // collides with epoch +5 modulo farBuckets
	add((5+2*64)*span+1, 7) // double collision
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i, v := range want {
		if fired[i] != v {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after Run, want 0", e.Pending())
	}
}

// TestEngineFarFutureCancel cancels events parked in the far calendar —
// head, middle and tail of a sorted bucket list — and checks the
// survivors still fire in order.
func TestEngineFarFutureCancel(t *testing.T) {
	e := NewEngine(1)
	span := Duration(1) << farShift
	var fired []int
	var handles []Event
	for i := 0; i < 6; i++ {
		i := i
		handles = append(handles, e.After(span+Duration(i)*Second, func() { fired = append(fired, i) }))
	}
	for _, i := range []int{0, 3, 5} { // head, middle, tail
		if !handles[i].Cancel() {
			t.Fatalf("cancel of far event %d reported not pending", i)
		}
		if handles[i].Pending() {
			t.Fatalf("far event %d still pending after cancel", i)
		}
	}
	if e.Pending() != 3 {
		t.Fatalf("pending %d, want 3", e.Pending())
	}
	e.Run()
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 4 {
		t.Fatalf("fired %v, want [1 2 4]", fired)
	}
}

// TestEngineRunUntilAcrossEpochs jumps the clock several wheel spans
// ahead with an empty queue, then schedules near events: the wheel base
// is far behind the clock, so the inserts land in the far calendar and
// must still fire at the right times.
func TestEngineRunUntilAcrossEpochs(t *testing.T) {
	e := NewEngine(1)
	span := Duration(1) << farShift
	e.RunUntil(Time(3*span + 60*Second))
	var fired []Time
	e.After(Millisecond, func() { fired = append(fired, e.Now()) })
	e.After(Microsecond, func() { fired = append(fired, e.Now()) })
	e.Run()
	want0 := Time(3*span + 60*Second + Microsecond)
	want1 := Time(3*span + 60*Second + Millisecond)
	if len(fired) != 2 || fired[0] != want0 || fired[1] != want1 {
		t.Fatalf("fired at %v, want [%v %v]", fired, want0, want1)
	}
}

// TestEngineReferenceModelFarDelays is the random schedule/cancel/step
// model check again, but with delays up to several wheel spans so the
// far calendar, epoch migration and cascade paths are all exercised.
func TestEngineReferenceModelFarDelays(t *testing.T) {
	type refEvent struct {
		at   Time
		seq  int
		live bool
	}
	span := Duration(1) << farShift
	rng := NewRNG(67890)
	for trial := 0; trial < 10; trial++ {
		e := NewEngine(1)
		var model []*refEvent
		var fired []int
		var handles []Event
		seq := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule, sometimes many epochs out
				var d Duration
				switch rng.Intn(3) {
				case 0:
					d = Duration(rng.Intn(1000)) * Microsecond
				case 1:
					d = Duration(rng.Intn(1 << 20))
				default:
					d = Duration(rng.Intn(200))*span/3 + Duration(rng.Intn(1000))*Millisecond
				}
				id := seq
				seq++
				model = append(model, &refEvent{at: e.Now().Add(d), seq: id, live: true})
				handles = append(handles, e.After(d, func() { fired = append(fired, id) }))
			case 2: // cancel a random handle
				if len(handles) > 0 {
					i := rng.Intn(len(handles))
					if handles[i].Cancel() {
						model[i].live = false
					}
				}
			case 3: // step
				var best *refEvent
				for _, m := range model {
					if !m.live {
						continue
					}
					if best == nil || m.at < best.at || (m.at == best.at && m.seq < best.seq) {
						best = m
					}
				}
				stepped := e.Step()
				if (best != nil) != stepped {
					t.Fatalf("trial %d op %d: model fireable=%v engine stepped=%v", trial, op, best != nil, stepped)
				}
				if best != nil {
					best.live = false
					if len(fired) == 0 || fired[len(fired)-1] != best.seq {
						t.Fatalf("trial %d op %d: engine fired %v, model expected %d", trial, op, fired, best.seq)
					}
					if e.Now() != best.at {
						t.Fatalf("trial %d op %d: clock %v, model %v", trial, op, e.Now(), best.at)
					}
				}
			}
		}
	}
}

// TestEngineMillionPending holds a million pending events spread over the
// wheel and calendar and drains them in order — the datacenter-scale
// shape the wheel exists for.
func TestEngineMillionPending(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-event drain; skipped in -short")
	}
	e := NewEngine(7)
	const n = 1_000_000
	rng := NewRNG(7)
	count := 0
	var last Time
	for i := 0; i < n; i++ {
		d := Duration(rng.Intn(int(3600 * Second)))
		e.After(d, func() {
			if e.Now() < last {
				t.Fatalf("out of order: %v after %v", e.Now(), last)
			}
			last = e.Now()
			count++
		})
	}
	if e.Pending() != n {
		t.Fatalf("pending %d, want %d", e.Pending(), n)
	}
	e.Run()
	if count != n {
		t.Fatalf("fired %d, want %d", count, n)
	}
}

// BenchmarkEventCancelFarFuture pins the cost of cancelling an event many
// wheel spans in the future: an O(1) bucket unlink, not a queue scan.
// Hot path: 0 allocs/op.
func BenchmarkEventCancelFarFuture(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	span := Duration(1) << farShift
	// A standing population of far-future events so the cancel works
	// against loaded calendar buckets.
	for i := 0; i < 4096; i++ {
		e.After(span+Duration(i)*Second, fn)
	}
	e.After(2*span, fn).Cancel() // warm the free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(2*span, fn).Cancel()
	}
}

// BenchmarkWheelChurn1MPending measures the insert+expire hot path with a
// standing backlog of one million pending timers — timeout wheels at
// datacenter connection counts. Hot path: 0 allocs/op.
func BenchmarkWheelChurn1MPending(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	rng := NewRNG(9)
	for i := 0; i < 1_000_000; i++ {
		e.After(60*Second+Duration(rng.Intn(int(3600*Second))), fn)
	}
	e.After(Microsecond, fn)
	e.Step() // warm the free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, fn)
		e.Step()
	}
}
