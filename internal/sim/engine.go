package sim

import (
	"fmt"
	"math/bits"
)

// EventFunc is the body of a scheduled event. It runs at its scheduled
// virtual time with the engine's clock already advanced.
type EventFunc func()

// event is the engine-owned representation of a scheduled event. Fired
// and cancelled events are recycled through the engine's free list, so
// steady-state scheduling performs no heap allocation; the generation
// counter keeps recycled storage from resurrecting stale handles.
//
// Pending events live on intrusive doubly-linked bucket lists inside the
// engine's timing wheel (or its far-future calendar), so insert, expire
// and cancel never move other events and never allocate.
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     EventFunc
	bkt    int32  // bucket index (wheel or far calendar); -1 once removed
	gen    uint64 // bumped on fire/cancel; handles with an older gen are dead
	engine *Engine
	next   *event
	prev   *event
}

// Event is a handle to a scheduled event, usable for cancellation. It is
// a small value, not a pointer: the engine recycles event storage, and
// the generation captured in the handle distinguishes the event it was
// issued for from any later reuse. The zero Event behaves like a handle
// to an event that has already fired.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At returns the virtual time the event is scheduled for.
func (h Event) At() Time { return h.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually pending. Cancellation is O(1) regardless of how far
// in the future the event sits: the handle leads straight to its bucket
// list node, with no queue scan or heap sift.
func (h Event) Cancel() bool {
	ev := h.e
	if ev == nil || ev.gen != h.gen || ev.bkt < 0 {
		return false
	}
	e := ev.engine
	e.unlink(ev)
	e.npending--
	e.release(ev)
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Event) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.bkt >= 0
}

// The pending-event store is a hierarchical timing wheel: wheelLevels
// levels of wheelSlots buckets, where a level-l slot spans 2^(wheelBits*l)
// nanoseconds. An event is filed at the level of the highest 6-bit digit
// in which its timestamp differs from the wheel's base time; level-0
// buckets therefore hold events of a single exact timestamp, in FIFO
// (= sequence) order. The wheel's base only advances inside Step, and
// only to the start of the bucket being expired, so base <= now at rest
// and a new insert can never land before base.
//
// Events beyond the wheel's span (timestamps whose bits above farShift
// differ from base's — more than ~73 virtual minutes ahead) go to a
// far-future calendar: farBuckets lists hashed by epoch, each kept sorted
// by (at, seq). When the wheel drains, the earliest far epoch is migrated
// into the wheel wholesale. Insert and expire are O(1) amortized — each
// event cascades down at most wheelLevels times over its lifetime.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 7
	farShift    = wheelBits * wheelLevels // wheel spans 2^42 ns
	farBuckets  = 64
	farBase     = wheelLevels * wheelSlots // bucket indexes >= farBase are far
)

// bucket is one intrusive doubly-linked event list.
type bucket struct {
	head *event
	tail *event
}

// append adds ev at the tail (FIFO order).
func (b *bucket) append(ev *event) {
	ev.prev = b.tail
	ev.next = nil
	if b.tail != nil {
		b.tail.next = ev
	} else {
		b.head = ev
	}
	b.tail = ev
}

// remove unlinks ev from the list.
func (b *bucket) remove(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// simulations are single-goroutine by design, which is what makes them
// deterministic. (The experiment harness runs many engines concurrently —
// one per goroutine — which is safe precisely because engines share no
// state.)
type Engine struct {
	now     Time
	seq     uint64
	rng     *RNG
	seed    int64
	stopped bool
	fired   uint64
	// free is the event recycling list: fired and cancelled events return
	// here and are handed out again by alloc. It grows to the maximum
	// number of concurrently pending events and no further.
	free []*event

	base     Time                // wheel base; invariant: base <= now at rest
	occ      [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	buckets  [wheelLevels * wheelSlots]bucket
	far      [farBuckets]bucket // far-future calendar, sorted by (at, seq)
	farCount int
	npending int
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed), seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine's RNG was created with, so exporters
// can stamp output with the run's identity.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.npending }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or allocates a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{engine: e, bkt: -1}
}

// release recycles a fired or cancelled event. The generation bump kills
// every outstanding handle to it before the storage is reused.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.bkt = -1
	e.free = append(e.free, ev)
}

// enqueue files ev into the wheel bucket (or far-calendar list) its
// timestamp selects under the current base. It does not touch npending:
// callers moving events between buckets reuse it.
func (e *Engine) enqueue(ev *event) {
	t := uint64(ev.at)
	b := uint64(e.base)
	if t>>farShift != b>>farShift {
		e.enqueueFar(ev)
		return
	}
	level := 0
	if diff := t ^ b; diff != 0 {
		level = (bits.Len64(diff) - 1) / wheelBits
	}
	slot := int(t>>(uint(level)*wheelBits)) & wheelMask
	idx := level*wheelSlots + slot
	e.buckets[idx].append(ev)
	ev.bkt = int32(idx)
	e.occ[level] |= 1 << uint(slot)
}

// enqueueFar files ev in its far-calendar bucket, keeping the list sorted
// by (at, seq). The walk starts from the tail: timers are typically
// scheduled in roughly increasing order, making the common insert O(1).
func (e *Engine) enqueueFar(ev *event) {
	i := int(uint64(ev.at)>>farShift) & (farBuckets - 1)
	b := &e.far[i]
	at, seq := ev.at, ev.seq
	p := b.tail
	for p != nil && (p.at > at || (p.at == at && p.seq > seq)) {
		p = p.prev
	}
	if p == nil {
		// New head.
		ev.prev = nil
		ev.next = b.head
		if b.head != nil {
			b.head.prev = ev
		} else {
			b.tail = ev
		}
		b.head = ev
	} else {
		ev.prev = p
		ev.next = p.next
		if p.next != nil {
			p.next.prev = ev
		} else {
			b.tail = ev
		}
		p.next = ev
	}
	ev.bkt = int32(farBase + i)
	e.farCount++
}

// unlink removes ev from whichever bucket list holds it, maintaining the
// occupancy bitmap (and far count). It does not touch npending.
func (e *Engine) unlink(ev *event) {
	idx := int(ev.bkt)
	if idx >= farBase {
		e.far[idx-farBase].remove(ev)
		e.farCount--
	} else {
		b := &e.buckets[idx]
		b.remove(ev)
		if b.head == nil {
			e.occ[idx>>wheelBits] &^= 1 << uint(idx&wheelMask)
		}
	}
	ev.bkt = -1
}

// peekMin returns the earliest pending event by (at, seq) without
// mutating any engine state, or nil when nothing is pending. Level-0
// buckets hold a single timestamp in FIFO order, so their head is exact;
// a higher-level bucket is scanned (its events span a slot's range); when
// the wheel is empty the sorted far-list heads are compared.
func (e *Engine) peekMin() *event {
	if e.npending == 0 {
		return nil
	}
	for level := 0; level < wheelLevels; level++ {
		occ := e.occ[level]
		if occ == 0 {
			continue
		}
		slot := bits.TrailingZeros64(occ)
		b := &e.buckets[level*wheelSlots+slot]
		if level == 0 {
			return b.head
		}
		best := b.head
		for ev := best.next; ev != nil; ev = ev.next {
			if ev.at < best.at || (ev.at == best.at && ev.seq < best.seq) {
				best = ev
			}
		}
		return best
	}
	var best *event
	for i := range e.far {
		h := e.far[i].head
		if h != nil && (best == nil || h.at < best.at || (h.at == best.at && h.seq < best.seq)) {
			best = h
		}
	}
	return best
}

// popMin removes and returns the earliest pending event, advancing the
// wheel base as needed. The caller must have checked npending > 0.
//
// The expiry loop finds the lowest non-empty level: every event at a
// lower level precedes every event at a higher one (its first differing
// digit from base is less significant), and within a level lower slots
// precede higher ones, so the lowest occupied slot of the lowest
// non-empty level holds the minimum. A level-0 bucket yields its FIFO
// head directly; a higher-level bucket is cascaded — base advances to the
// bucket's window start and its events refile one or more levels down,
// preserving list order so same-instant events stay in sequence order.
func (e *Engine) popMin() *event {
	for {
		level := -1
		for l := 0; l < wheelLevels; l++ {
			if e.occ[l] != 0 {
				level = l
				break
			}
		}
		if level < 0 {
			e.migrateFar()
			continue
		}
		slot := bits.TrailingZeros64(e.occ[level])
		idx := level*wheelSlots + slot
		b := &e.buckets[idx]
		if level == 0 {
			ev := b.head
			b.remove(ev)
			if b.head == nil {
				e.occ[0] &^= 1 << uint(slot)
			}
			ev.bkt = -1
			e.npending--
			return ev
		}
		// Cascade: advance base to this bucket's window (digits above the
		// level keep base's values — they match every event here; the
		// level's digit becomes the slot; lower digits zero) and refile.
		shift := uint(level) * wheelBits
		e.base = Time(uint64(e.base)&^(uint64(1)<<(shift+wheelBits)-1) | uint64(slot)<<shift)
		head := b.head
		b.head, b.tail = nil, nil
		e.occ[level] &^= 1 << uint(slot)
		for ev := head; ev != nil; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			e.enqueue(ev)
			ev = next
		}
	}
}

// migrateFar moves the earliest far-calendar epoch into the wheel. Only
// called with the wheel empty, so base may jump to the epoch's start
// (which is <= the epoch's earliest event, itself >= now).
func (e *Engine) migrateFar() {
	var min *event
	for i := range e.far {
		h := e.far[i].head
		if h != nil && (min == nil || h.at < min.at || (h.at == min.at && h.seq < min.seq)) {
			min = h
		}
	}
	if min == nil {
		panic("sim: internal error: pending events but wheel and calendar empty")
	}
	epoch := uint64(min.at) >> farShift
	e.base = Time(epoch << farShift)
	b := &e.far[int(epoch)&(farBuckets-1)]
	// The epoch's events form a prefix of the sorted list; epochs that
	// collide modulo farBuckets sort strictly after (their times are
	// >= a higher epoch start) and stay behind.
	for ev := b.head; ev != nil && uint64(ev.at)>>farShift == epoch; ev = b.head {
		b.remove(ev)
		e.farCount--
		e.enqueue(ev)
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.enqueue(ev)
	e.npending++
	return Event{e: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn EventFunc) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run and RunUntil return after the currently executing event
// completes. The queue is left intact, so the simulation can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.npending == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	e.fired++
	fn := ev.fn
	// Recycle before running: fn may schedule new events, and letting it
	// reuse this storage immediately keeps the free list tight.
	e.release(ev)
	fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event would be after deadline. The clock
// finishes at min(deadline, time of last executed event); if the queue
// drains early the clock is advanced to the deadline so that rate and
// utilization calculations see the full interval.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		next := e.peekMin()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Every schedules fn to run periodically with the given period, starting
// one period from now, until the returned Ticker is stopped.
func (e *Engine) Every(period Duration, fn EventFunc) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	// One closure for the ticker's whole lifetime: each firing re-arms
	// with the same func value, so a long-lived ticker allocates nothing
	// per tick.
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.ev = t.engine.After(t.period, t.fire)
		}
	}
	t.ev = e.After(period, t.fire)
	return t
}

// Ticker repeatedly fires an event with a fixed period.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      EventFunc
	fire    EventFunc
	ev      Event
	stopped bool
}

// Stop cancels all future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
