package sim

import (
	"fmt"
)

// EventFunc is the body of a scheduled event. It runs at its scheduled
// virtual time with the engine's clock already advanced.
type EventFunc func()

// event is the engine-owned representation of a scheduled event. Fired
// and cancelled events are recycled through the engine's free list, so
// steady-state scheduling performs no heap allocation; the generation
// counter keeps recycled storage from resurrecting stale handles.
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     EventFunc
	index  int    // heap index; -1 once removed
	gen    uint64 // bumped on fire/cancel; handles with an older gen are dead
	engine *Engine
}

// Event is a handle to a scheduled event, usable for cancellation. It is
// a small value, not a pointer: the engine recycles event storage, and
// the generation captured in the handle distinguishes the event it was
// issued for from any later reuse. The zero Event behaves like a handle
// to an event that has already fired.
type Event struct {
	e   *event
	gen uint64
	at  Time
}

// At returns the virtual time the event is scheduled for.
func (h Event) At() Time { return h.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually pending.
func (h Event) Cancel() bool {
	ev := h.e
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return false
	}
	ev.engine.queue.remove(ev.index)
	ev.engine.release(ev)
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (h Event) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.index >= 0
}

// eventQueue is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap to keep interface boxing and
// indirect calls out of the simulator's innermost loop.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && q.less(r, l) {
			j = r
		}
		if !q.less(j, i) {
			return
		}
		q.swap(i, j)
		i = j
	}
}

func (q *eventQueue) push(ev *event) {
	ev.index = len(*q)
	*q = append(*q, ev)
	q.up(ev.index)
}

func (q *eventQueue) pop() *event {
	old := *q
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*q = old[:n]
	(*q).down(0)
	return ev
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	old := *q
	n := len(old) - 1
	ev := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	ev.index = -1
	*q = old[:n]
	if i != n {
		(*q).down(i)
		(*q).up(i)
	}
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// simulations are single-goroutine by design, which is what makes them
// deterministic. (The experiment harness runs many engines concurrently —
// one per goroutine — which is safe precisely because engines share no
// state.)
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *RNG
	seed    int64
	stopped bool
	fired   uint64
	// free is the event recycling list: fired and cancelled events return
	// here and are handed out again by alloc. It grows to the maximum
	// number of concurrently pending events and no further.
	free []*event
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed), seed: seed}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine's RNG was created with, so exporters
// can stamp output with the run's identity.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// alloc takes an event from the free list, or allocates a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{engine: e}
}

// release recycles a fired or cancelled event. The generation bump kills
// every outstanding handle to it before the storage is reused.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.queue.push(ev)
	return Event{e: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn EventFunc) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run and RunUntil return after the currently executing event
// completes. The queue is left intact, so the simulation can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.fired++
	fn := ev.fn
	// Recycle before running: fn may schedule new events, and letting it
	// reuse this storage immediately keeps the free list tight.
	e.release(ev)
	fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event would be after deadline. The clock
// finishes at min(deadline, time of last executed event); if the queue
// drains early the clock is advanced to the deadline so that rate and
// utilization calculations see the full interval.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Every schedules fn to run periodically with the given period, starting
// one period from now, until the returned Ticker is stopped.
func (e *Engine) Every(period Duration, fn EventFunc) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	// One closure for the ticker's whole lifetime: each firing re-arms
	// with the same func value, so a long-lived ticker allocates nothing
	// per tick.
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.ev = t.engine.After(t.period, t.fire)
		}
	}
	t.ev = e.After(period, t.fire)
	return t
}

// Ticker repeatedly fires an event with a fixed period.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      EventFunc
	fire    EventFunc
	ev      Event
	stopped bool
}

// Stop cancels all future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
