package sim

import (
	"container/heap"
	"fmt"
)

// EventFunc is the body of a scheduled event. It runs at its scheduled
// virtual time with the engine's clock already advanced.
type EventFunc func()

// Event is a handle to a scheduled event, usable for cancellation.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among events at the same instant
	fn     EventFunc
	index  int // heap index; -1 once removed
	dead   bool
	engine *Engine
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was actually pending.
func (e *Event) Cancel() bool {
	if e.dead || e.index < 0 {
		return false
	}
	heap.Remove(&e.engine.queue, e.index)
	e.dead = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool { return !e.dead && e.index >= 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// simulations are single-goroutine by design, which is what makes them
// deterministic.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *RNG
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and a deterministic
// RNG seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn EventFunc) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d Duration, fn EventFunc) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes Run and RunUntil return after the currently executing event
// completes. The queue is left intact, so the simulation can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.dead = true
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// RunUntil executes events in timestamp order until the queue is empty, the
// engine is stopped, or the next event would be after deadline. The clock
// finishes at min(deadline, time of last executed event); if the queue
// drains early the clock is advanced to the deadline so that rate and
// utilization calculations see the full interval.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or the engine is stopped.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Every schedules fn to run periodically with the given period, starting
// one period from now, until the returned Ticker is stopped.
func (e *Engine) Every(period Duration, fn EventFunc) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker repeatedly fires an event with a fixed period.
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      EventFunc
	ev      *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels all future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
