// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a pending-event queue, and a seedable random number
// generator. Every subsystem in this repository (scheduler, kernel,
// network, servers, workloads) runs on top of this engine, which makes
// every experiment reproducible bit-for-bit.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time so that simulated
// code cannot accidentally consult the wall clock.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the familiar unit constants can be converted directly.
type Duration int64

// Convenient duration units, matching time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of µs.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Std converts d to a time.Duration (both are nanosecond counts).
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a time.Duration to a sim.Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// String formats the duration using time.Duration's human-readable form.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf validates and converts a floating-point number of seconds.
func DurationOf(seconds float64) Duration {
	return Duration(seconds * float64(Second))
}

// Min returns the smaller of a and b.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Rate describes an event rate in events per virtual second.
type Rate float64

// Interval returns the mean inter-event gap for the rate. It panics if the
// rate is not positive, because a zero rate has no finite interval.
func (r Rate) Interval() Duration {
	if r <= 0 {
		panic(fmt.Sprintf("sim: non-positive rate %v has no interval", float64(r)))
	}
	return Duration(float64(Second) / float64(r))
}
