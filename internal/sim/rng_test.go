package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	mean := 10 * Millisecond
	var sum Duration
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatal("Exp returned negative duration")
		}
		sum += v
	}
	got := float64(sum) / n
	want := float64(mean)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Exp mean %v, want ~%v", Duration(got), mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	r := NewRNG(1)
	if r.Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(17)
	lo, hi := 2*Millisecond, 8*Millisecond
	for i := 0; i < 10000; i++ {
		v := r.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if r.Uniform(hi, lo) != hi {
		t.Fatal("Uniform with inverted bounds should return lo")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Fork(1)
	b := r.Fork(2)
	// Forks with different labels from the same parent state must differ.
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams identical")
	}
	// Forking is deterministic: same parent state + label => same stream.
	r2 := NewRNG(23)
	a2 := r2.Fork(1)
	a3 := NewRNG(23).Fork(1)
	if a2.Uint64() != a3.Uint64() {
		t.Fatal("fork not deterministic")
	}
}

// Property: Fork never returns a generator with a zero (stuck) state.
func TestForkNeverZero(t *testing.T) {
	f := func(seed int64, label uint64) bool {
		g := NewRNG(seed).Fork(label)
		return g.state != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
