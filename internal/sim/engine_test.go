package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Millisecond)
	if t1 != Time(5_000_000) {
		t.Fatalf("Add: got %d, want 5000000", t1)
	}
	if d := t1.Sub(t0); d != 5*Millisecond {
		t.Fatalf("Sub: got %v, want 5ms", d)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatal("Before ordering wrong")
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Fatal("After ordering wrong")
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if got := d.Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds: got %v, want 1.5", got)
	}
	if got := d.Microseconds(); got != 1500 {
		t.Errorf("Microseconds: got %v, want 1500", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds: got %v, want 2", got)
	}
	if d.Std() != 1500*time.Microsecond {
		t.Errorf("Std conversion mismatch")
	}
	if FromStd(3*time.Second) != 3*Second {
		t.Errorf("FromStd conversion mismatch")
	}
	if DurationOf(0.25) != 250*Millisecond {
		t.Errorf("DurationOf: got %v", DurationOf(0.25))
	}
}

func TestRateInterval(t *testing.T) {
	if got := Rate(1000).Interval(); got != Millisecond {
		t.Errorf("Interval: got %v, want 1ms", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Interval of zero rate should panic")
		}
	}()
	Rate(0).Interval()
}

func TestMinMax(t *testing.T) {
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min wrong")
	}
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max wrong")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(30*Millisecond, func() { order = append(order, 3) })
	e.After(10*Millisecond, func() { order = append(order, 1) })
	e.After(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != Time(30*Millisecond) {
		t.Fatalf("clock at %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(Millisecond), func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("expected panic scheduling in the past")
		}
	}()
	e.At(0, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(Millisecond, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !ev.Cancel() {
		t.Fatal("Cancel should report true for a pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := NewEngine(1)
	ev := e.After(Millisecond, func() {})
	e.Run()
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	if ev.Cancel() {
		t.Fatal("cancelling a fired event should report false")
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(1*Millisecond, func() { order = append(order, 1) })
	mid := e.After(2*Millisecond, func() { order = append(order, 2) })
	e.After(3*Millisecond, func() { order = append(order, 3) })
	mid.Cancel()
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("got %v, want [1 3]", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Duration
	for _, d := range []Duration{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		d := d
		e.After(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(Time(3 * Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired %v, want first two", fired)
	}
	if e.Now() != Time(3*Millisecond) {
		t.Fatalf("clock at %v, want exactly deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	// Resume past the rest.
	e.RunUntil(Time(10 * Millisecond))
	if len(fired) != 3 {
		t.Fatalf("after resume fired %v, want all three", fired)
	}
	if e.Now() != Time(10*Millisecond) {
		t.Fatalf("clock at %v, want 10ms", e.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(Time(Second))
	if e.Now() != Time(Second) {
		t.Fatalf("clock at %v, want 1s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.After(Millisecond, func() {
		count++
		e.Stop()
	})
	e.After(2*Millisecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count %d, want 1 (stopped after first)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.After(Millisecond, func() {
		times = append(times, e.Now())
		e.After(Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != Time(Millisecond) || times[1] != Time(2*Millisecond) {
		t.Fatalf("chained events: %v", times)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := e.Every(Millisecond, func() { count++ })
	e.RunUntil(Time(5*Millisecond + Microsecond))
	if count != 5 {
		t.Fatalf("ticks %d, want 5", count)
	}
	tk.Stop()
	e.RunUntil(Time(10 * Millisecond))
	if count != 5 {
		t.Fatalf("ticker fired after Stop: %d", count)
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.Every(Millisecond, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(Time(Second))
	if count != 3 {
		t.Fatalf("ticks %d, want 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero period")
		}
	}()
	e.Every(0, func() {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.After(Duration(i+1)*Millisecond, func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired %d, want 7", e.Fired())
	}
}

// Property: with N events at random times, Run executes all of them in
// non-decreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(42)
		var fired []Time
		for _, d := range delays {
			e.After(Duration(d)*Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Model check: the engine's heap-based queue behaves exactly like a naive
// reference implementation under random schedule/cancel/step sequences.
func TestEngineAgainstReferenceModel(t *testing.T) {
	type refEvent struct {
		at   Time
		seq  int
		live bool
	}
	rng := NewRNG(12345)
	for trial := 0; trial < 20; trial++ {
		e := NewEngine(1)
		var model []*refEvent
		var fired []int
		var handles []Event
		seq := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule
				d := Duration(rng.Intn(1000)) * Microsecond
				id := seq
				seq++
				model = append(model, &refEvent{at: e.Now().Add(d), seq: id, live: true})
				handles = append(handles, e.After(d, func() { fired = append(fired, id) }))
			case 2: // cancel a random handle
				if len(handles) > 0 {
					i := rng.Intn(len(handles))
					if handles[i].Cancel() {
						model[i].live = false
					}
				}
			case 3: // step
				// Reference: earliest live not-yet-fired event, FIFO seq.
				var best *refEvent
				for _, m := range model {
					if !m.live {
						continue
					}
					if best == nil || m.at < best.at || (m.at == best.at && m.seq < best.seq) {
						best = m
					}
				}
				stepped := e.Step()
				if (best != nil) != stepped {
					t.Fatalf("trial %d op %d: model fireable=%v engine stepped=%v", trial, op, best != nil, stepped)
				}
				if best != nil {
					best.live = false
					if len(fired) == 0 || fired[len(fired)-1] != best.seq {
						t.Fatalf("trial %d op %d: engine fired %v, model expected %d", trial, op, fired, best.seq)
					}
				}
			}
		}
	}
}
