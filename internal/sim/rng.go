package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64*, Vigna 2016). We implement it directly rather than using
// math/rand so that the generated streams are stable across Go releases:
// experiment outputs in EXPERIMENTS.md must be reproducible forever.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed int64) *RNG {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15 // golden-ratio constant
	}
	return &RNG{state: s}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, the standard conversion.
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Exp returns an exponentially distributed duration with the given mean,
// the classic model for inter-arrival gaps in open-loop traffic.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 { // avoid log(0)
		u = r.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Uniform returns a uniform duration in [lo, hi).
func (r *RNG) Uniform(lo, hi Duration) Duration {
	if hi <= lo {
		return lo
	}
	return lo + Duration(r.Float64()*float64(hi-lo))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent generator whose stream is a deterministic
// function of this generator's state and the label. Use it to give each
// client/flow its own stream so that adding one client does not perturb
// the randomness seen by the others.
func (r *RNG) Fork(label uint64) *RNG {
	// SplitMix64 over (state ^ label) gives well-separated streams.
	z := r.state ^ (label * 0xBF58476D1CE4E5B9)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return &RNG{state: z}
}
