package trace

import (
	"strings"
	"testing"

	"rescon/internal/sim"
)

func TestEmitAndEvents(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Emitf(sim.Time(i), KindPacket, "pkt %d", i)
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("events %d", len(evs))
	}
	for i, e := range evs {
		if e.At != sim.Time(i) || e.Kind != KindPacket {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("Total %d", tr.Total())
	}
}

func TestStructuredEvent(t *testing.T) {
	tr := New(8)
	tr.Emit(Event{
		At:        sim.Time(3 * sim.Millisecond),
		Kind:      KindDispatch,
		CPU:       1,
		Stage:     StageSocket,
		Principal: "conn-7",
		Conn:      7,
		Cost:      40 * sim.Microsecond,
		Detail:    "proto:DATA",
	})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events %d", len(evs))
	}
	e := evs[0]
	if e.Stage != StageSocket || e.Principal != "conn-7" || e.Conn != 7 {
		t.Fatalf("structured fields lost: %+v", e)
	}
	line := e.String()
	for _, want := range []string{"dispatch", "cpu1", "stage=socket", "[conn-7]", "conn=7", "cost=", "proto:DATA"} {
		if !strings.Contains(line, want) {
			t.Fatalf("rendered line %q missing %q", line, want)
		}
	}
}

func TestStageString(t *testing.T) {
	cases := map[Stage]string{
		StageNone:      "-",
		StageInterrupt: "interrupt",
		StageIP:        "ip",
		StageSocket:    "socket",
		StageSyscall:   "syscall",
		StageUser:      "user",
		StageDisk:      "disk",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("Stage(%d) = %q, want %q", s, got, want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emitf(sim.Time(i), KindConn, "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Chronological order, last four.
	for i, e := range evs {
		if e.At != sim.Time(6+i) {
			t.Fatalf("event %d at %v, want %d", i, e.At, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total %d", tr.Total())
	}
}

func TestFilter(t *testing.T) {
	tr := New(8)
	tr.Filter = map[Kind]bool{KindDrop: true}
	tr.Emitf(0, KindPacket, "ignored")
	tr.Emitf(0, KindDrop, "kept")
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KindDrop {
		t.Fatalf("filter failed: %v", evs)
	}
	if tr.Enabled(KindPacket) {
		t.Fatal("filtered kind reported enabled")
	}
	if !tr.Enabled(KindDrop) {
		t.Fatal("kept kind reported disabled")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emitf(0, KindPacket, "no-op") // must not panic
	tr.Emit(Event{Kind: KindDrop})   // must not panic
	if tr.Enabled(KindPacket) {
		t.Fatal("nil tracer reported enabled")
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(4)
	tr.Emitf(sim.Time(sim.Millisecond), KindDrop, "SYN queue full")
	out := tr.String()
	if !strings.Contains(out, "drop") || !strings.Contains(out, "SYN queue full") {
		t.Fatalf("dump: %q", out)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	for i := 0; i < 2000; i++ {
		tr.Emitf(sim.Time(i), KindConn, "e")
	}
	if len(tr.Events()) != 1024 {
		t.Fatalf("default capacity: %d", len(tr.Events()))
	}
}
