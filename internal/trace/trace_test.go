package trace

import (
	"strings"
	"testing"

	"rescon/internal/sim"
)

func TestEmitAndEvents(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Emit(sim.Time(i), KindPacket, "pkt %d", i)
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("events %d", len(evs))
	}
	for i, e := range evs {
		if e.At != sim.Time(i) || e.Kind != KindPacket {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("Total %d", tr.Total())
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.Time(i), KindConn, "e%d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	// Chronological order, last four.
	for i, e := range evs {
		if e.At != sim.Time(6+i) {
			t.Fatalf("event %d at %v, want %d", i, e.At, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total %d", tr.Total())
	}
}

func TestFilter(t *testing.T) {
	tr := New(8)
	tr.Filter = map[Kind]bool{KindDrop: true}
	tr.Emit(0, KindPacket, "ignored")
	tr.Emit(0, KindDrop, "kept")
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KindDrop {
		t.Fatalf("filter failed: %v", evs)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KindPacket, "no-op") // must not panic
}

func TestDumpFormat(t *testing.T) {
	tr := New(4)
	tr.Emit(sim.Time(sim.Millisecond), KindDrop, "SYN queue full")
	out := tr.String()
	if !strings.Contains(out, "drop") || !strings.Contains(out, "SYN queue full") {
		t.Fatalf("dump: %q", out)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	for i := 0; i < 2000; i++ {
		tr.Emit(sim.Time(i), KindConn, "e")
	}
	if len(tr.Events()) != 1024 {
		t.Fatalf("default capacity: %d", len(tr.Events()))
	}
}
