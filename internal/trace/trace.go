// Package trace provides a bounded, deterministic event log for the
// simulated kernel. Tracing is off unless a Tracer is attached, so the
// hot paths pay only a nil check.
package trace

import (
	"fmt"
	"io"
	"strings"

	"rescon/internal/sim"
)

// Kind classifies trace events so consumers can filter.
type Kind string

// Event kinds emitted by the kernel.
const (
	KindPacket    Kind = "packet"    // NIC arrival
	KindDrop      Kind = "drop"      // packet dropped (backlog, SYN queue, memory)
	KindConn      Kind = "conn"      // connection established / closed
	KindDispatch  Kind = "dispatch"  // CPU slice start
	KindInterrupt Kind = "interrupt" // interrupt-level work
	KindContainer Kind = "container" // container lifecycle
	KindFault     Kind = "fault"     // injected fault (wire loss/dup/delay, disk error)
	KindPolice    Kind = "police"    // admission-control (backlog policing) drop
	KindCrash     Kind = "crash"     // server worker crash / restart
)

// Event is one trace record.
type Event struct {
	At     sim.Time
	Kind   Kind
	Detail string
}

// String formats the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%-12v %-10s %s", e.At, e.Kind, e.Detail)
}

// Tracer is a bounded ring of events.
type Tracer struct {
	events []Event
	next   int
	full   bool
	total  uint64
	// Filter, when non-nil, drops events whose kind maps to false.
	Filter map[Kind]bool
}

// New returns a tracer holding the last capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Emit records an event (subject to the filter).
func (t *Tracer) Emit(at sim.Time, kind Kind, format string, args ...any) {
	if t == nil {
		return
	}
	if t.Filter != nil && !t.Filter[kind] {
		return
	}
	t.events[t.next] = Event{At: at, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Total returns how many events have been emitted (including evicted).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump writes the retained events to w, most recent last.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}

// String returns the dump as a string.
func (t *Tracer) String() string {
	var b strings.Builder
	t.Dump(&b)
	return b.String()
}
