// Package trace provides a bounded, deterministic, structured event log
// for the simulated kernel. Tracing is off unless a Tracer is attached,
// so the hot paths pay only a nil check; call sites that must format
// details guard the work with Enabled so a detached or filtered tracer
// costs nothing.
package trace

import (
	"fmt"
	"io"
	"strings"

	"rescon/internal/sim"
)

// Kind classifies trace events so consumers can filter.
type Kind string

// Event kinds emitted by the kernel.
const (
	KindPacket    Kind = "packet"    // NIC arrival
	KindDrop      Kind = "drop"      // packet dropped (backlog, SYN queue, memory)
	KindConn      Kind = "conn"      // connection established / closed
	KindDispatch  Kind = "dispatch"  // CPU slice start
	KindInterrupt Kind = "interrupt" // interrupt-level work
	KindContainer Kind = "container" // container lifecycle
	KindFault     Kind = "fault"     // injected fault (wire loss/dup/delay, disk error)
	KindPolice    Kind = "police"    // admission-control (backlog policing) drop
	KindCrash     Kind = "crash"     // server worker crash / restart
)

// Stage identifies the kernel execution stage CPU time is attributed to —
// the rows of the paper's "who paid for this microsecond" accounting
// (§4.6, Fig 14). StageNone marks events that carry no CPU attribution.
type Stage uint8

// Kernel execution stages, in pipeline order.
const (
	StageNone      Stage = iota
	StageInterrupt       // NIC interrupt handling
	StageIP              // early demultiplexing / IP-level classification
	StageSocket          // protocol and socket-layer processing
	StageSyscall         // kernel-mode work in syscall context
	StageUser            // user-mode application work
	StageDisk            // disk device occupancy
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageNone:
		return "-"
	case StageInterrupt:
		return "interrupt"
	case StageIP:
		return "ip"
	case StageSocket:
		return "socket"
	case StageSyscall:
		return "syscall"
	case StageUser:
		return "user"
	case StageDisk:
		return "disk"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Event is one structured trace record. Principal names the resource
// principal involved (a container or scheduler-entity name — never a
// numeric container ID, which is not stable across parallel runs); CPU is
// the processor index (-1 when no processor is involved); Conn is the
// kernel connection identifier (0 when not connection-scoped); Cost is
// the CPU time the event accounts for (0 for instantaneous events).
type Event struct {
	At        sim.Time
	Kind      Kind
	CPU       int
	Stage     Stage
	Principal string
	Conn      uint64
	Cost      sim.Duration
	Detail    string
}

// String formats the event as one log line, structured fields first.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12v %-10s", e.At, e.Kind)
	if e.CPU >= 0 {
		fmt.Fprintf(&b, " cpu%d", e.CPU)
	}
	if e.Stage != StageNone {
		fmt.Fprintf(&b, " stage=%s", e.Stage)
	}
	if e.Principal != "" {
		fmt.Fprintf(&b, " [%s]", e.Principal)
	}
	if e.Conn != 0 {
		fmt.Fprintf(&b, " conn=%d", e.Conn)
	}
	if e.Cost != 0 {
		fmt.Fprintf(&b, " cost=%v", e.Cost)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Tracer is a bounded ring of events.
type Tracer struct {
	events []Event
	next   int
	full   bool
	total  uint64
	// Filter, when non-nil, drops events whose kind maps to false.
	Filter map[Kind]bool
}

// New returns a tracer holding the last capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Enabled reports whether events of the kind would be recorded. Call
// sites use it to skip detail formatting when the tracer is detached or
// the kind is filtered out.
func (t *Tracer) Enabled(kind Kind) bool {
	if t == nil {
		return false
	}
	return t.Filter == nil || t.Filter[kind]
}

// Emit records an event (subject to the filter). If the event's CPU field
// was left at its zero value the event is treated as processor-less
// (CPU -1); processor-scoped emitters must set CPU explicitly.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled(e.Kind) {
		return
	}
	t.events[t.next] = e
	t.next++
	t.total++
	if t.next == len(t.events) {
		t.next = 0
		t.full = true
	}
}

// Emitf records a detail-only event, formatting lazily: the format is not
// evaluated when the tracer is detached or the kind filtered.
func (t *Tracer) Emitf(at sim.Time, kind Kind, format string, args ...any) {
	if !t.Enabled(kind) {
		return
	}
	t.Emit(Event{At: at, Kind: kind, CPU: -1, Detail: fmt.Sprintf(format, args...)})
}

// Total returns how many events have been emitted (including evicted).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.events[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump writes the retained events to w, most recent last.
func (t *Tracer) Dump(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}

// String returns the dump as a string.
func (t *Tracer) String() string {
	var b strings.Builder
	t.Dump(&b)
	return b.String()
}
