// Package metrics provides the measurement primitives used by the
// experiment drivers: counters, rate meters, latency summaries, and
// time series. Everything operates on virtual time from internal/sim so
// that reported rates are rates in simulated seconds.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"rescon/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter. Negative deltas panic: a Counter is
// monotonic by contract.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// RateMeter converts a counter observed over a virtual-time window into an
// events-per-second rate.
type RateMeter struct {
	count uint64
	start sim.Time
	last  sim.Time
}

// NewRateMeter returns a meter whose window starts at start.
func NewRateMeter(start sim.Time) *RateMeter {
	return &RateMeter{start: start, last: start}
}

// Observe records one event at time t.
func (m *RateMeter) Observe(t sim.Time) {
	m.count++
	m.last = t
}

// Count returns the number of observed events.
func (m *RateMeter) Count() uint64 { return m.count }

// Rate returns events per simulated second over [start, now].
func (m *RateMeter) Rate(now sim.Time) float64 {
	elapsed := now.Sub(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// Restart clears the meter and begins a new window at t. Use it to discard
// warm-up transients before the measured interval.
func (m *RateMeter) Restart(t sim.Time) {
	m.count = 0
	m.start = t
	m.last = t
}

// Summary accumulates scalar samples and reports order statistics.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// ObserveDuration records a duration sample in milliseconds, the unit the
// paper's response-time figures use.
func (s *Summary) ObserveDuration(d sim.Duration) {
	s.Observe(d.Milliseconds())
}

// N returns the number of samples.
func (s *Summary) N() int { return len(s.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0 with
// no samples.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.samples[idx]
}

// Median returns the 0.5 quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.Quantile(1) }

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (s *Summary) Reset() {
	s.samples = s.samples[:0]
	s.sorted = false
	s.sum = 0
}

// Histogram buckets duration samples on a fixed linear grid. It exists for
// distribution-shaped output (e.g. per-connection service time spread).
type Histogram struct {
	width   sim.Duration
	buckets []uint64
	over    uint64
	count   uint64
	sum     sim.Duration
}

// NewHistogram returns a histogram with n buckets of the given width;
// samples at or beyond n*width land in an overflow bucket. A
// non-positive width or bucket count is a configuration error, reported
// as an error rather than a panic so callers that derive the shape from
// untrusted input can surface it as a finding.
func NewHistogram(width sim.Duration, n int) (*Histogram, error) {
	if width <= 0 || n <= 0 {
		return nil, fmt.Errorf("metrics: invalid histogram shape width=%v n=%d", width, n)
	}
	return &Histogram{width: width, buckets: make([]uint64, n)}, nil
}

// MustNewHistogram is NewHistogram that panics on an invalid shape —
// the documented programmer-error guard for histograms with constant
// shapes, where the arguments are literals and failure means a typo.
func MustNewHistogram(width sim.Duration, n int) *Histogram {
	h, err := NewHistogram(width, n)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one duration sample. A negative sample is rejected
// with an error and not recorded; durations in this codebase come from
// virtual-clock subtraction, so a negative value means the caller's
// bookkeeping is broken.
func (h *Histogram) Observe(d sim.Duration) error {
	if d < 0 {
		return fmt.Errorf("metrics: negative histogram sample %v", d)
	}
	h.count++
	h.sum += d
	idx := int(d / h.width)
	if idx >= len(h.buckets) {
		h.over++
		return nil
	}
	h.buckets[idx]++
	return nil
}

// Count returns the total number of samples (including overflow).
func (h *Histogram) Count() uint64 { return h.count }

// Overflow returns the number of samples beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.over }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Mean returns the mean sample duration, or 0 with no samples.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Series is an (x, y) sequence — one figure curve.
type Series struct {
	Name   string
	Points []Point
}

// Point is a single (x, y) sample of a curve.
type Point struct {
	X float64
	Y float64
}

// Append adds a point to the series.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the y value for the first point with the given x and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
