package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table renders aligned text tables, in the spirit of the paper's Table 1
// and the figure data the experiment drivers emit.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderSeries writes one or more curves that share an x axis as a single
// table: the x column followed by one y column per series.
func RenderSeries(w io.Writer, title, xLabel string, series ...*Series) {
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := make([]any, len(series)+1)
		row[0] = x
		for i, s := range series {
			if y, ok := s.YAt(x); ok {
				row[i+1] = y
			} else {
				row[i+1] = "-"
			}
		}
		t.AddRow(row...)
	}
	t.Render(w)
}

// RenderCSV writes the table as CSV (header row then data rows), for
// import into plotting tools.
func (t *Table) RenderCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	_ = cw.Write(t.Headers)
	for _, row := range t.Rows {
		_ = cw.Write(row)
	}
	cw.Flush()
}

// RenderSeriesCSV writes curves sharing an x axis as CSV: the x column
// followed by one column per series. Missing points are empty cells.
func RenderSeriesCSV(w io.Writer, xLabel string, series ...*Series) {
	cw := csv.NewWriter(w)
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	_ = cw.Write(headers)
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := make([]string, len(series)+1)
		row[0] = strconv.FormatFloat(x, 'g', -1, 64)
		for i, s := range series {
			if y, ok := s.YAt(x); ok {
				row[i+1] = strconv.FormatFloat(y, 'g', -1, 64)
			}
		}
		_ = cw.Write(row)
	}
	cw.Flush()
}
