package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rescon/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(0)
	for i := 1; i <= 100; i++ {
		m.Observe(sim.Time(i) * sim.Time(sim.Millisecond))
	}
	// 100 events in 1 simulated second => 100/s.
	if got := m.Rate(sim.Time(sim.Second)); got != 100 {
		t.Fatalf("Rate %v, want 100", got)
	}
	if m.Count() != 100 {
		t.Fatalf("Count %d, want 100", m.Count())
	}
}

func TestRateMeterRestart(t *testing.T) {
	m := NewRateMeter(0)
	m.Observe(sim.Time(sim.Millisecond))
	m.Restart(sim.Time(sim.Second))
	if m.Count() != 0 {
		t.Fatal("Restart did not clear count")
	}
	m.Observe(sim.Time(sim.Second) + sim.Time(sim.Millisecond))
	// 1 event in 0.5s window => 2/s.
	if got := m.Rate(sim.Time(sim.Second) + sim.Time(500*sim.Millisecond)); got != 2 {
		t.Fatalf("Rate after restart %v, want 2", got)
	}
}

func TestRateMeterZeroWindow(t *testing.T) {
	m := NewRateMeter(sim.Time(sim.Second))
	m.Observe(sim.Time(sim.Second))
	if m.Rate(sim.Time(sim.Second)) != 0 {
		t.Fatal("zero-width window should report 0 rate")
	}
}

func TestSummaryStats(t *testing.T) {
	var s Summary
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Observe(v)
	}
	if s.N() != 5 {
		t.Fatalf("N %d, want 5", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean %v, want 3", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("Median %v, want 3", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max %v/%v, want 1/5", s.Min(), s.Max())
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.Stddev()-want) > 1e-12 {
		t.Fatalf("Stddev %v, want %v", s.Stddev(), want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Median() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryObserveDuration(t *testing.T) {
	var s Summary
	s.ObserveDuration(2500 * sim.Microsecond)
	if s.Mean() != 2.5 {
		t.Fatalf("ObserveDuration stored %v ms, want 2.5", s.Mean())
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Observe(10)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear summary")
	}
}

func TestSummaryQuantileBounds(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if s.Quantile(-1) != 1 {
		t.Fatal("q<0 should clamp to min")
	}
	if s.Quantile(2) != 100 {
		t.Fatal("q>1 should clamp to max")
	}
	if got := s.Quantile(0.9); got != 90 {
		t.Fatalf("p90 %v, want 90", got)
	}
}

// Property: Quantile is monotone in q and bounded by [Min, Max].
func TestSummaryQuantileProperty(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if len(vals) == 0 {
			return true
		}
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Observe(v)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean is consistent with the sample sum.
func TestSummaryMeanProperty(t *testing.T) {
	f := func(vals []int16) bool {
		var s Summary
		sum := 0.0
		for _, v := range vals {
			s.Observe(float64(v))
			sum += float64(v)
		}
		if len(vals) == 0 {
			return s.Mean() == 0
		}
		return math.Abs(s.Mean()-sum/float64(len(vals))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := MustNewHistogram(sim.Millisecond, 10)
	for _, d := range []sim.Duration{
		0,
		500 * sim.Microsecond,
		1500 * sim.Microsecond,
		9999 * sim.Microsecond,
		50 * sim.Millisecond, // overflow
	} {
		if err := h.Observe(d); err != nil {
			t.Fatalf("Observe(%v): %v", d, err)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count %d, want 5", h.Count())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(9) != 1 {
		t.Fatalf("buckets wrong: %d %d %d", h.Bucket(0), h.Bucket(1), h.Bucket(9))
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow %d, want 1", h.Overflow())
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets %d", h.NumBuckets())
	}
	wantMean := (0 + 500*sim.Microsecond + 1500*sim.Microsecond + 9999*sim.Microsecond + 50*sim.Millisecond) / 5
	if h.Mean() != wantMean {
		t.Fatalf("Mean %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramErrors(t *testing.T) {
	for name, fn := range map[string]func() error{
		"zero width":      func() error { _, err := NewHistogram(0, 10); return err },
		"zero buckets":    func() error { _, err := NewHistogram(sim.Millisecond, 0); return err },
		"negative sample": func() error { return MustNewHistogram(sim.Millisecond, 1).Observe(-1) },
	} {
		if err := fn(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// The rejected sample must not be recorded.
	h := MustNewHistogram(sim.Millisecond, 1)
	_ = h.Observe(-1)
	if h.Count() != 0 {
		t.Fatalf("rejected sample was recorded: Count %d", h.Count())
	}
	// MustNewHistogram is the documented panic guard.
	defer func() {
		if recover() == nil {
			t.Error("MustNewHistogram(0, 0) did not panic")
		}
	}()
	MustNewHistogram(0, 0)
}

// Property: every observation lands in exactly one bucket or overflow.
func TestHistogramConservation(t *testing.T) {
	f := func(samples []uint32) bool {
		h := MustNewHistogram(sim.Millisecond, 8)
		for _, s := range samples {
			if err := h.Observe(sim.Duration(s)); err != nil {
				return false
			}
		}
		var total uint64
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total+h.Overflow() == uint64(len(samples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Append(1, 10)
	s.Append(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt(3) should not exist")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Table 1: costs", "Operation", "Cost (ns)")
	tab.AddRow("create", 123.4)
	tab.AddRow("destroy", 99)
	out := tab.String()
	for _, want := range []string{"Table 1: costs", "Operation", "create", "destroy", "123.4", "99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "A"}
	a.Append(0, 1)
	a.Append(1, 2)
	b := &Series{Name: "B"}
	b.Append(1, 30)
	var sb strings.Builder
	RenderSeries(&sb, "Fig", "x", a, b)
	out := sb.String()
	for _, want := range []string{"Fig", "A", "B", "30", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345.6: "12346",
		99.95:   "100.0", // %.1f rounds up
		1.23456: "1.235", // %.3f
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// Sanity: quantile computation agrees with a direct nearest-rank
// implementation on random data.
func TestQuantileAgainstReference(t *testing.T) {
	r := sim.NewRNG(99)
	var s Summary
	var ref []float64
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 100
		s.Observe(v)
		ref = append(ref, v)
	}
	sort.Float64s(ref)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
		idx := int(math.Ceil(q*1000)) - 1
		if got := s.Quantile(q); got != ref[idx] {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, ref[idx])
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("x", 1.5)
	var sb strings.Builder
	tab.RenderCSV(&sb)
	want := "a,b\nx,1.500\n"
	if sb.String() != want {
		t.Fatalf("CSV %q, want %q", sb.String(), want)
	}
}

func TestRenderSeriesCSV(t *testing.T) {
	a := &Series{Name: "A"}
	a.Append(0, 1)
	a.Append(1, 2)
	b := &Series{Name: "B"}
	b.Append(1, 30)
	var sb strings.Builder
	RenderSeriesCSV(&sb, "x", a, b)
	want := "x,A,B\n0,1,\n1,2,30\n"
	if sb.String() != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", sb.String(), want)
	}
}
