package netsim

import "testing"

// Steady-state queue traffic — including full drains, the common case for
// protocol queues between bursts — must not reallocate the ring buffer.
func TestQueuePushPopNoAllocs(t *testing.T) {
	q := NewQueue[int](1024)
	q.Push(0)
	q.Pop() // drained: the small buffer must be retained
	allocs := testing.AllocsPerRun(200, func() {
		q.Push(1)
		q.Push(2)
		if _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
		if _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("push/pop cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// Large backlogs must still be released on drain so a transient spike
// cannot pin its worst-case buffer.
func TestQueueReleasesLargeBufferOnDrain(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < keepCap*4; i++ {
		q.Push(i)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	if q.buf != nil {
		t.Fatalf("drained queue retains %d-slot buffer, want released (> keepCap=%d)", len(q.buf), keepCap)
	}
	// A small buffer is kept.
	q.Push(1)
	q.Pop()
	if q.buf == nil {
		t.Fatal("drained queue released a small buffer; steady-state traffic would reallocate every cycle")
	}
}
