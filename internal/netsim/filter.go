package netsim

import (
	"errors"
	"fmt"
)

// Filter is the paper's new sockaddr namespace element (§4.8): a template
// address plus a CIDR network mask specifying a set of foreign addresses.
// A listening socket bound with a filter accepts connections only from
// matching clients, so different client classes can be isolated — and
// prioritized via the socket's resource container — before the
// application ever sees a connection.
type Filter struct {
	Template IP
	// MaskBits is the CIDR prefix length (0–32); 0 matches everything.
	MaskBits int
	// Complement inverts the match: the filter accepts clients NOT in the
	// prefix. The paper suggests complement filters ("one might also want
	// to be able to specify complement filters").
	Complement bool
}

// ErrBadFilter reports an invalid CIDR mask length.
var ErrBadFilter = errors.New("netsim: invalid filter mask")

// Validate checks the mask length.
func (f Filter) Validate() error {
	if f.MaskBits < 0 || f.MaskBits > 32 {
		return fmt.Errorf("%w: %d bits", ErrBadFilter, f.MaskBits)
	}
	return nil
}

func (f Filter) mask() uint32 {
	if f.MaskBits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(f.MaskBits))
}

// Matches reports whether the client address is selected by the filter.
func (f Filter) Matches(ip IP) bool {
	m := f.mask()
	in := uint32(ip)&m == uint32(f.Template)&m
	if f.Complement {
		return !in
	}
	return in
}

// Specificity orders filters for demultiplexing: longer prefixes win, and
// a direct match beats a complement match of equal length (a complement
// filter is a catch-all for "everyone else").
func (f Filter) Specificity() int {
	s := f.MaskBits * 2
	if f.Complement {
		s--
	}
	return s
}

// String formats the filter in CIDR notation.
func (f Filter) String() string {
	neg := ""
	if f.Complement {
		neg = "!"
	}
	return fmt.Sprintf("%s%s/%d", neg, f.Template, f.MaskBits)
}

// Wildcard matches every client: the ordinary (filterless) bind.
var Wildcard = Filter{}
