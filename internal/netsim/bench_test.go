package netsim

import (
	"fmt"
	"testing"
)

func BenchmarkDemuxMatch(b *testing.B) {
	var d Demux
	srv := Addr{IP: MustParseIP("10.0.0.1"), Port: 80}
	_ = d.Add(&Listener{Local: srv, Filter: Wildcard})
	for i := 0; i < 8; i++ {
		_ = d.Add(&Listener{Local: srv, Filter: Filter{Template: IP(i << 24), MaskBits: 8}})
	}
	src := MustParseIP("5.6.7.8")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Match(srv, src) == nil {
			b.Fatal("no match")
		}
	}
}

func BenchmarkFilterMatches(b *testing.B) {
	f := Filter{Template: MustParseIP("66.0.0.0"), MaskBits: 8}
	ip := MustParseIP("66.1.2.3")
	for i := 0; i < b.N; i++ {
		if !f.Matches(ip) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue[int](1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkParseIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseIP("192.168.1.100"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPString(b *testing.B) {
	ip := MustParseIP("192.168.1.100")
	for i := 0; i < b.N; i++ {
		_ = fmt.Sprintf("%v", ip)
	}
}
