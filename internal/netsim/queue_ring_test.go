package netsim

import "testing"

// TestQueueWraparound drives head past the end of the backing array and
// verifies FIFO order survives the wrap.
func TestQueueWraparound(t *testing.T) {
	q := NewQueue[int](0)
	next := 0
	// Fill to the initial backing size, then cycle pop-one/push-one far
	// past it so head crosses the array boundary many times.
	for ; next < 8; next++ {
		q.Push(next)
	}
	want := 0
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop %d = (%d,%v), want %d", i, v, ok, want)
		}
		want++
		q.Push(next)
		next++
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d, want 8", q.Len())
	}
	for q.Len() > 0 {
		v, _ := q.Pop()
		if v != want {
			t.Fatalf("drain pop = %d, want %d", v, want)
		}
		want++
	}
}

// TestQueueGrowPreservesOrderAcrossWrap grows the ring while head is in
// the middle of the array, so the copy-out must unwrap correctly.
func TestQueueGrowPreservesOrderAcrossWrap(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 8; i++ {
		q.Push(i)
	}
	for i := 0; i < 5; i++ { // advance head to index 5
		q.Pop()
	}
	for i := 8; i < 20; i++ { // forces at least one grow with head != 0
		q.Push(i)
	}
	for want := 5; want < 20; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, want)
		}
	}
}

// TestQueuePushFrontOrdering verifies PushFront prepends ahead of queued
// items and interleaves correctly with Push.
func TestQueuePushFrontOrdering(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(2)
	q.Push(3)
	q.PushFront(1)
	q.Push(4)
	q.PushFront(0)
	for want := 0; want <= 4; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, want)
		}
	}
}

// TestQueuePushFrontBypassesCap is the documented contract: PushFront
// returns borrowed work even to a full queue, Len may exceed Cap by the
// borrowed amount, Full reports true, and subsequent Pushes drop.
func TestQueuePushFrontBypassesCap(t *testing.T) {
	q := NewQueue[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	q.PushFront(0) // borrowed item returned to a full queue
	if q.Len() != 5 || q.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d, want 5 over cap 4", q.Len(), q.Cap())
	}
	if !q.Full() {
		t.Fatal("queue over capacity must report Full")
	}
	if q.Push(9) {
		t.Fatal("Push accepted while over capacity")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
	for want := 0; want <= 4; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("pop = (%d,%v), want %d", v, ok, want)
		}
	}
}

// TestQueueReleasesBufferOnDrain checks that a drained queue does not pin
// the backing array of its worst-case backlog (and Clear likewise).
func TestQueueReleasesBufferOnDrain(t *testing.T) {
	q := NewQueue[*Packet](0)
	for i := 0; i < 1000; i++ {
		q.Push(&Packet{})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	if q.buf != nil {
		t.Fatalf("drained queue still holds %d-slot buffer", len(q.buf))
	}
	q.Push(&Packet{})
	q.Clear()
	if q.buf != nil {
		t.Fatal("Clear did not release the buffer")
	}
	// The queue must remain usable after release.
	if !q.Push(&Packet{}) || q.Len() != 1 {
		t.Fatal("queue unusable after buffer release")
	}
}
