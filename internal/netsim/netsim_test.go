package netsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	ip, err := ParseIP("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if ip != IP(10<<24|1<<16|2<<8|3) {
		t.Fatalf("ParseIP wrong value: %d", ip)
	}
	if ip.String() != "10.1.2.3" {
		t.Fatalf("String round trip: %s", ip)
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "-1.0.0.0", "a.b.c.d"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) should fail", s)
		}
	}
}

func TestMustParseIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustParseIP("bogus")
}

func TestIPStringRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IP(raw)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{IP: MustParseIP("192.168.0.1"), Port: 80}
	if a.String() != "192.168.0.1:80" {
		t.Fatalf("Addr string: %s", a)
	}
}

func TestFilterMatches(t *testing.T) {
	f := Filter{Template: MustParseIP("10.0.0.0"), MaskBits: 8}
	if !f.Matches(MustParseIP("10.255.1.2")) {
		t.Fatal("should match inside /8")
	}
	if f.Matches(MustParseIP("11.0.0.1")) {
		t.Fatal("should not match outside /8")
	}
}

func TestFilterHostMatch(t *testing.T) {
	f := Filter{Template: MustParseIP("10.1.1.1"), MaskBits: 32}
	if !f.Matches(MustParseIP("10.1.1.1")) || f.Matches(MustParseIP("10.1.1.2")) {
		t.Fatal("/32 filter wrong")
	}
}

func TestFilterWildcard(t *testing.T) {
	if !Wildcard.Matches(MustParseIP("1.2.3.4")) || !Wildcard.Matches(0) {
		t.Fatal("wildcard must match everything")
	}
}

func TestFilterComplement(t *testing.T) {
	f := Filter{Template: MustParseIP("10.0.0.0"), MaskBits: 8, Complement: true}
	if f.Matches(MustParseIP("10.1.2.3")) {
		t.Fatal("complement filter matched inside prefix")
	}
	if !f.Matches(MustParseIP("11.1.2.3")) {
		t.Fatal("complement filter missed outside prefix")
	}
}

func TestFilterValidate(t *testing.T) {
	if err := (Filter{MaskBits: 33}).Validate(); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("want ErrBadFilter, got %v", err)
	}
	if err := (Filter{MaskBits: -1}).Validate(); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("want ErrBadFilter, got %v", err)
	}
	if err := Wildcard.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterSpecificity(t *testing.T) {
	w := Wildcard.Specificity()
	p8 := Filter{MaskBits: 8}.Specificity()
	p8c := Filter{MaskBits: 8, Complement: true}.Specificity()
	p32 := Filter{MaskBits: 32}.Specificity()
	if !(w < p8c && p8c < p8 && p8 < p32) {
		t.Fatalf("specificity ordering wrong: %d %d %d %d", w, p8c, p8, p32)
	}
}

func TestFilterString(t *testing.T) {
	f := Filter{Template: MustParseIP("10.0.0.0"), MaskBits: 8, Complement: true}
	if f.String() != "!10.0.0.0/8" {
		t.Fatalf("String: %s", f)
	}
}

// Property: a filter and its complement partition the address space.
func TestFilterComplementPartitionProperty(t *testing.T) {
	f := func(tmpl uint32, bits uint8, probe uint32) bool {
		b := int(bits % 33)
		in := Filter{Template: IP(tmpl), MaskBits: b}
		out := Filter{Template: IP(tmpl), MaskBits: b, Complement: true}
		return in.Matches(IP(probe)) != out.Matches(IP(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketKindString(t *testing.T) {
	if SYN.String() != "SYN" || Data.String() != "DATA" || FIN.String() != "FIN" {
		t.Fatal("kind names wrong")
	}
	if PacketKind(9).String() != "PacketKind(9)" {
		t.Fatal("unknown kind formatting wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: SYN, Src: Addr{IP: 1, Port: 2}, Dst: Addr{IP: 3, Port: 80}, Size: 40}
	if p.String() == "" {
		t.Fatal("empty packet string")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 5; i++ {
		if !q.Push(i) {
			t.Fatal("unbounded queue rejected push")
		}
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d: got %d,%v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop from empty queue succeeded")
	}
}

func TestQueueBounded(t *testing.T) {
	q := NewQueue[int](2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes within capacity failed")
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Push(3) {
		t.Fatal("push to full queue accepted")
	}
	if q.Drops() != 1 {
		t.Fatalf("drops %d, want 1", q.Drops())
	}
	q.Pop()
	if !q.Push(3) {
		t.Fatal("push after pop failed")
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue[string](0)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek: %q %v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek consumed an item")
	}
}

func TestQueueClear(t *testing.T) {
	q := NewQueue[int](5)
	q.Push(1)
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("Clear left items")
	}
	if q.Cap() != 5 {
		t.Fatal("Clear changed capacity")
	}
}

// Property: a bounded queue never exceeds capacity and conserves items.
func TestQueueConservationProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewQueue[int](4)
		pushed, popped, dropped := 0, 0, 0
		for i, push := range ops {
			if push {
				if q.Push(i) {
					pushed++
				} else {
					dropped++
				}
			} else {
				if _, ok := q.Pop(); ok {
					popped++
				}
			}
			if q.Len() > 4 {
				return false
			}
		}
		return pushed-popped == q.Len() && uint64(dropped) == q.Drops()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDemuxBasic(t *testing.T) {
	var d Demux
	srv := Addr{IP: MustParseIP("10.0.0.1"), Port: 80}
	def := &Listener{Local: srv, Filter: Wildcard, Owner: "default"}
	if err := d.Add(def); err != nil {
		t.Fatal(err)
	}
	got := d.Match(srv, MustParseIP("99.1.2.3"))
	if got != def {
		t.Fatalf("Match: %v", got)
	}
	if d.Match(Addr{IP: srv.IP, Port: 81}, MustParseIP("99.1.2.3")) != nil {
		t.Fatal("matched wrong port")
	}
}

func TestDemuxMostSpecificWins(t *testing.T) {
	var d Demux
	srv := Addr{IP: MustParseIP("10.0.0.1"), Port: 80}
	def := &Listener{Local: srv, Filter: Wildcard, Owner: "default"}
	bad := &Listener{Local: srv, Filter: Filter{Template: MustParseIP("66.0.0.0"), MaskBits: 8}, Owner: "attackers"}
	host := &Listener{Local: srv, Filter: Filter{Template: MustParseIP("66.6.6.6"), MaskBits: 32}, Owner: "one-host"}
	for _, l := range []*Listener{def, bad, host} {
		if err := d.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Match(srv, MustParseIP("66.1.1.1")); got != bad {
		t.Fatalf("attacker prefix should win over wildcard: %v", got)
	}
	if got := d.Match(srv, MustParseIP("66.6.6.6")); got != host {
		t.Fatalf("/32 should win over /8: %v", got)
	}
	if got := d.Match(srv, MustParseIP("99.0.0.1")); got != def {
		t.Fatalf("unmatched client should hit wildcard: %v", got)
	}
}

func TestDemuxDuplicate(t *testing.T) {
	var d Demux
	srv := Addr{Port: 80}
	l := &Listener{Local: srv, Filter: Wildcard}
	if err := d.Add(l); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(&Listener{Local: srv, Filter: Wildcard}); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("want ErrAddrInUse, got %v", err)
	}
	// Different filter on the same endpoint is the whole point of the
	// new namespace.
	if err := d.Add(&Listener{Local: srv, Filter: Filter{MaskBits: 8}}); err != nil {
		t.Fatal(err)
	}
}

func TestDemuxBadFilter(t *testing.T) {
	var d Demux
	err := d.Add(&Listener{Local: Addr{Port: 80}, Filter: Filter{MaskBits: 99}})
	if !errors.Is(err, ErrBadFilter) {
		t.Fatalf("want ErrBadFilter, got %v", err)
	}
}

func TestDemuxRemove(t *testing.T) {
	var d Demux
	srv := Addr{Port: 80}
	l := &Listener{Local: srv, Filter: Wildcard}
	_ = d.Add(l)
	d.Remove(l)
	if d.Len() != 0 || d.Match(srv, 1) != nil {
		t.Fatal("Remove failed")
	}
	d.Remove(l) // no-op
}

func TestDemuxWildcardLocalIP(t *testing.T) {
	var d Demux
	anyAddr := &Listener{Local: Addr{IP: 0, Port: 80}, Filter: Wildcard}
	_ = d.Add(anyAddr)
	if d.Match(Addr{IP: MustParseIP("10.0.0.1"), Port: 80}, 1) != anyAddr {
		t.Fatal("INADDR_ANY listener should match any local IP")
	}
}

func TestDemuxComplementPair(t *testing.T) {
	// The §5.7 defense: normal socket for everyone except the attack
	// prefix, low-priority socket for the attackers.
	var d Demux
	srv := Addr{Port: 80}
	attack := Filter{Template: MustParseIP("66.0.0.0"), MaskBits: 8}
	good := &Listener{Local: srv, Filter: Filter{Template: attack.Template, MaskBits: 8, Complement: true}, Owner: "good"}
	bad := &Listener{Local: srv, Filter: attack, Owner: "bad"}
	_ = d.Add(good)
	_ = d.Add(bad)
	if got := d.Match(srv, MustParseIP("66.1.2.3")); got != bad {
		t.Fatalf("attacker matched %v", got.Owner)
	}
	if got := d.Match(srv, MustParseIP("9.9.9.9")); got != good {
		t.Fatalf("good client matched %v", got.Owner)
	}
}
