package netsim

import (
	"testing"
)

// --- Queue.PopInto: batched drains across the ring-buffer boundaries ---

func TestQueuePopIntoFIFO(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	dst := make([]int, 4)
	if n := q.PopInto(dst); n != 4 {
		t.Fatalf("PopInto delivered %d, want 4", n)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d, want %d", i, v, i)
		}
	}
	// The remainder pops in order after the batch.
	if v, _ := q.Pop(); v != 4 {
		t.Fatalf("head after batch = %d, want 4", v)
	}
	if q.Len() != 5 {
		t.Fatalf("len %d, want 5", q.Len())
	}
}

func TestQueuePopIntoShortQueue(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(1)
	q.Push(2)
	dst := make([]int, 8)
	if n := q.PopInto(dst); n != 2 {
		t.Fatalf("PopInto delivered %d, want 2", n)
	}
	if dst[0] != 1 || dst[1] != 2 {
		t.Fatalf("batch %v, want [1 2 ...]", dst[:2])
	}
	if q.Len() != 0 {
		t.Fatalf("len %d after full drain, want 0", q.Len())
	}
	if n := q.PopInto(dst); n != 0 {
		t.Fatalf("PopInto on empty delivered %d, want 0", n)
	}
	if n := q.PopInto(nil); n != 0 {
		t.Fatalf("PopInto(nil) delivered %d, want 0", n)
	}
}

func TestQueuePopIntoWraparound(t *testing.T) {
	// Force the batch to straddle the ring seam: advance head, refill so
	// the live region wraps past the end of the backing array.
	q := NewQueue[int](0)
	for i := 0; i < 8; i++ {
		q.Push(i) // 8-slot backing array, exactly full
	}
	for i := 0; i < 6; i++ {
		q.Pop() // head = 6
	}
	for i := 8; i < 13; i++ {
		q.Push(i) // wraps: items 6..12 with head near the seam
	}
	dst := make([]int, 7)
	if n := q.PopInto(dst); n != 7 {
		t.Fatalf("PopInto delivered %d, want 7", n)
	}
	for i, v := range dst {
		if v != 6+i {
			t.Fatalf("dst[%d] = %d, want %d (seam-crossing batch out of order)", i, v, 6+i)
		}
	}
}

func TestQueuePopIntoReleasesLargeBufferOnDrain(t *testing.T) {
	// A batched drain honors the same grow/shrink contract as Pop: a
	// large backing array is released when the batch empties the queue,
	// and a small one is retained.
	q := NewQueue[int](0)
	for i := 0; i < keepCap*4; i++ {
		q.Push(i)
	}
	dst := make([]int, keepCap*4)
	if n := q.PopInto(dst); n != keepCap*4 {
		t.Fatalf("PopInto delivered %d, want %d", n, keepCap*4)
	}
	if q.buf != nil {
		t.Fatalf("batched drain retains a %d-slot buffer, want released (> keepCap=%d)", len(q.buf), keepCap)
	}
	q.Push(1)
	if q.PopInto(dst[:1]) != 1 {
		t.Fatal("PopInto after release failed")
	}
	if q.buf == nil {
		t.Fatal("batched drain released a small buffer; steady-state traffic would reallocate")
	}
}

func TestQueuePopIntoReleasesReferences(t *testing.T) {
	q := NewQueue[*int](0)
	v := new(int)
	for i := 0; i < 4; i++ {
		q.Push(v)
	}
	dst := make([]*int, 2)
	q.PopInto(dst)
	// The vacated ring slots must be zeroed so drained items are not
	// pinned by the backing array.
	for i := 0; i < 2; i++ {
		if q.buf[i] != nil {
			t.Fatalf("ring slot %d still references a drained item", i)
		}
	}
}

func TestQueuePopIntoThenPushInterleaved(t *testing.T) {
	// Grow/shrink boundary churn: repeated partial batch drains
	// interleaved with pushes must preserve FIFO across every
	// reallocation and seam crossing.
	q := NewQueue[int](0)
	next, expect := 0, 0
	dst := make([]int, 3)
	for round := 0; round < 200; round++ {
		for i := 0; i < 5; i++ {
			q.Push(next)
			next++
		}
		n := q.PopInto(dst)
		for i := 0; i < n; i++ {
			if dst[i] != expect {
				t.Fatalf("round %d: got %d, want %d", round, dst[i], expect)
			}
			expect++
		}
	}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v != expect {
			t.Fatalf("tail drain: got %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("conservation: drained %d items, pushed %d", expect, next)
	}
}

// --- Demux at scale: thousands of listen sockets ---

func TestDemuxThousandsOfListeners(t *testing.T) {
	var d Demux
	const n = 5000
	listeners := make([]*Listener, n)
	for i := 0; i < n; i++ {
		l := &Listener{Local: Addr{IP: MustParseIP("10.0.0.1"), Port: uint16(1 + i%60000)}}
		if i >= 60000 {
			t.Fatal("test assumes unique ports")
		}
		listeners[i] = l
		if err := d.Add(l); err != nil {
			t.Fatalf("Add #%d: %v", i, err)
		}
	}
	if d.Len() != n {
		t.Fatalf("Len %d, want %d", d.Len(), n)
	}
	src := MustParseIP("10.1.0.1")
	for i := 0; i < n; i += 97 {
		got := d.Match(listeners[i].Local, src)
		if got != listeners[i] {
			t.Fatalf("Match(port %d) = %v, want listener %d", listeners[i].Local.Port, got, i)
		}
	}
	if d.Match(Addr{IP: MustParseIP("10.0.0.1"), Port: 60001}, src) != nil {
		t.Fatal("Match on an unbound port should be nil")
	}
	// Remove every other listener; matches and Len stay consistent.
	for i := 0; i < n; i += 2 {
		d.Remove(listeners[i])
	}
	if d.Len() != n/2 {
		t.Fatalf("Len %d after removes, want %d", d.Len(), n/2)
	}
	if d.Match(listeners[0].Local, src) != nil {
		t.Fatal("removed listener still matches")
	}
	if d.Match(listeners[1].Local, src) != listeners[1] {
		t.Fatal("surviving listener no longer matches")
	}
}

func TestDemuxSharedPortManyFilters(t *testing.T) {
	// Thousands of filtered sockets sharing one port (per-client-network
	// listeners): the most specific match must still win, and the
	// earlier binding must win specificity ties — binding order within a
	// port bucket is insertion order.
	var d Demux
	local := Addr{IP: MustParseIP("10.0.0.1"), Port: 80}
	const n = 2000
	filtered := make([]*Listener, n)
	for i := 0; i < n; i++ {
		f := Filter{Template: IP(uint32(i) << 16), MaskBits: 16}
		filtered[i] = &Listener{Local: local, Filter: f}
		if err := d.Add(filtered[i]); err != nil {
			t.Fatalf("Add filter #%d: %v", i, err)
		}
	}
	wildcard := &Listener{Local: local}
	if err := d.Add(wildcard); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		src := IP(uint32(i)<<16 + 7)
		if got := d.Match(local, src); got != filtered[i] {
			t.Fatalf("Match(src in net %d) = %v, want its /16 listener", i, got)
		}
	}
	// A source outside every /16 falls through to the wildcard.
	if got := d.Match(local, IP(uint32(n+5)<<16)); got != wildcard {
		t.Fatalf("unfiltered source matched %v, want the wildcard listener", got)
	}
	// A duplicate (local, filter) still collides inside the bucket.
	if err := d.Add(&Listener{Local: local, Filter: filtered[3].Filter}); err == nil {
		t.Fatal("duplicate binding accepted")
	}
}

func BenchmarkDemuxMatch5kListeners(b *testing.B) {
	var d Demux
	for i := 0; i < 5000; i++ {
		if err := d.Add(&Listener{Local: Addr{IP: MustParseIP("10.0.0.1"), Port: uint16(1 + i)}}); err != nil {
			b.Fatal(err)
		}
	}
	dst := Addr{IP: MustParseIP("10.0.0.1"), Port: 2500}
	src := MustParseIP("10.1.0.1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Match(dst, src) == nil {
			b.Fatal("no match")
		}
	}
}
