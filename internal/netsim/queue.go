package netsim

// Queue is a bounded FIFO. The kernel uses it for listen-socket SYN and
// accept queues and for per-process protocol queues. A zero capacity
// means unbounded (used for the baseline interrupt queue, whose unbounded
// growth is exactly the receive-livelock failure mode).
type Queue[T any] struct {
	items []T
	cap   int
	drops uint64
}

// NewQueue returns a queue bounded at capacity (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Push appends v, or drops it (counting the drop) when the queue is full.
// It reports whether the item was accepted.
func (q *Queue[T]) Push(v T) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		q.drops++
		return false
	}
	q.items = append(q.items, v)
	return true
}

// PushFront prepends v, bypassing the capacity bound: it exists to return
// borrowed (partially processed) work to the head of the queue.
func (q *Queue[T]) PushFront(v T) {
	q.items = append([]T{v}, q.items...)
}

// Pop removes and returns the oldest item.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero // release reference
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil // reset backing array so it cannot grow unboundedly
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.cap }

// Full reports whether a Push would drop.
func (q *Queue[T]) Full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// Drops returns how many items have been rejected.
func (q *Queue[T]) Drops() uint64 { return q.drops }

// Clear empties the queue without counting drops.
func (q *Queue[T]) Clear() { q.items = nil }
