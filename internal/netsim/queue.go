package netsim

// Queue is a bounded FIFO. The kernel uses it for listen-socket SYN and
// accept queues and for per-process protocol queues. A zero capacity
// means unbounded (used for the baseline interrupt queue, whose unbounded
// growth is exactly the receive-livelock failure mode).
//
// The queue is a ring buffer: Push, PushFront, Pop and Peek are all O(1).
// The backing array grows on demand and is released when the queue
// drains, so a transient backlog cannot pin memory forever.
type Queue[T any] struct {
	buf   []T
	head  int // index of the oldest item
	n     int // number of queued items
	cap   int // capacity bound (0 = unbounded)
	hi    int // high-water mark of n
	drops uint64
}

// NewQueue returns a queue bounded at capacity (0 = unbounded).
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// grow ensures room for one more item.
func (q *Queue[T]) grow() {
	if q.n < len(q.buf) {
		return
	}
	size := 2 * len(q.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Push appends v, or drops it (counting the drop) when the queue is full.
// It reports whether the item was accepted.
func (q *Queue[T]) Push(v T) bool {
	if q.cap > 0 && q.n >= q.cap {
		q.drops++
		return false
	}
	q.grow()
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	if q.n > q.hi {
		q.hi = q.n
	}
	return true
}

// PushFront prepends v. It deliberately BYPASSES the capacity bound: it
// exists to return borrowed (partially processed) work to the head of the
// queue, and rejecting that work would lose it. The queue may therefore
// briefly exceed Cap() — by at most the number of items concurrently
// borrowed (one per servicing thread) — and Full() reports true for it,
// so subsequent Push calls drop as usual. Invariant checkers watching the
// bound must allow that slack.
func (q *Queue[T]) PushFront(v T) {
	q.grow()
	q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
	q.buf[q.head] = v
	q.n++
	if q.n > q.hi {
		q.hi = q.n
	}
}

// Pop removes and returns the oldest item.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero // release reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	if q.n == 0 {
		// Release a large backing array so a drained queue cannot pin the
		// memory of its worst-case backlog. Small buffers are kept: queues
		// that oscillate between empty and a few items (the steady-state
		// pattern for protocol queues) must not reallocate on every cycle.
		if len(q.buf) > keepCap {
			q.buf = nil
		}
		q.head = 0
	}
	return v, true
}

// keepCap is the largest backing array a drained queue retains.
const keepCap = 64

// PopInto removes up to len(dst) of the oldest items into dst and
// returns how many it delivered — batched event delivery, one call
// instead of a Pop per item for servers draining a deep backlog.
func (q *Queue[T]) PopInto(dst []T) int {
	var zero T
	n := len(dst)
	if n > q.n {
		n = q.n
	}
	for i := 0; i < n; i++ {
		dst[i] = q.buf[q.head]
		q.buf[q.head] = zero // release reference
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= n
	if q.n == 0 {
		if len(q.buf) > keepCap {
			q.buf = nil
		}
		q.head = 0
	}
	return n
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.n }

// Cap returns the capacity (0 = unbounded). PushFront may briefly exceed
// it; see PushFront.
func (q *Queue[T]) Cap() int { return q.cap }

// Full reports whether a Push would drop.
func (q *Queue[T]) Full() bool { return q.cap > 0 && q.n >= q.cap }

// Drops returns how many items have been rejected.
func (q *Queue[T]) Drops() uint64 { return q.drops }

// HighWater returns the deepest the queue has ever been — the worst-case
// backlog a telemetry sample between drains would otherwise miss.
func (q *Queue[T]) HighWater() int { return q.hi }

// Clear empties the queue without counting drops.
func (q *Queue[T]) Clear() {
	q.buf = nil
	q.head = 0
	q.n = 0
}
