package netsim

import (
	"errors"
	"fmt"
)

// Listener is one listening socket binding in the demultiplexer: a local
// endpoint plus a client filter. Owner is an opaque reference to the
// kernel's socket object.
type Listener struct {
	Local  Addr
	Filter Filter
	Owner  any
}

// String summarizes the binding.
func (l *Listener) String() string {
	return fmt.Sprintf("listen %s filter %s", l.Local, l.Filter)
}

// ErrAddrInUse is returned when binding a (local, filter) pair that is
// already bound.
var ErrAddrInUse = errors.New("netsim: address already in use")

// Demux is the kernel's listening-socket demultiplexer, extended with the
// paper's filter semantics: several sockets may share one local
// <address, port> as long as their <template, mask> filters differ, and
// an incoming SYN is assigned to the socket with the most specific
// matching filter (§4.8).
//
// Listeners are indexed by destination port, so with thousands of bound
// sockets a Match touches only the bucket of candidates sharing the
// packet's port, not every listener on the machine. Within a bucket
// listeners stay in binding order, preserving the earlier-binding
// tie-break among equally specific filters.
type Demux struct {
	byPort map[uint16][]*Listener
	n      int
}

// Add binds a listener. It fails if an identical (local, filter) binding
// exists.
func (d *Demux) Add(l *Listener) error {
	if err := l.Filter.Validate(); err != nil {
		return err
	}
	if d.byPort == nil {
		d.byPort = make(map[uint16][]*Listener)
	}
	bucket := d.byPort[l.Local.Port]
	for _, x := range bucket {
		if x.Local == l.Local && x.Filter == l.Filter {
			return fmt.Errorf("%w: %s", ErrAddrInUse, l)
		}
	}
	d.byPort[l.Local.Port] = append(bucket, l)
	d.n++
	return nil
}

// Remove unbinds a listener; unknown listeners are ignored.
func (d *Demux) Remove(l *Listener) {
	bucket := d.byPort[l.Local.Port]
	for i, x := range bucket {
		if x == l {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(d.byPort, l.Local.Port)
			} else {
				d.byPort[l.Local.Port] = bucket
			}
			d.n--
			return
		}
	}
}

// Match returns the listener for a SYN from src to dst: the most specific
// matching filter among sockets bound to the destination endpoint, or nil
// when no socket matches. Earlier bindings win ties, deterministically.
func (d *Demux) Match(dst Addr, src IP) *Listener {
	var best *Listener
	for _, l := range d.byPort[dst.Port] {
		if l.Local.IP != 0 && l.Local.IP != dst.IP {
			continue
		}
		if !l.Filter.Matches(src) {
			continue
		}
		if best == nil || l.Filter.Specificity() > best.Filter.Specificity() {
			best = l
		}
	}
	return best
}

// Len returns the number of bound listeners.
func (d *Demux) Len() int { return d.n }
