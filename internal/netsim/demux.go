package netsim

import (
	"errors"
	"fmt"
)

// Listener is one listening socket binding in the demultiplexer: a local
// endpoint plus a client filter. Owner is an opaque reference to the
// kernel's socket object.
type Listener struct {
	Local  Addr
	Filter Filter
	Owner  any
}

// String summarizes the binding.
func (l *Listener) String() string {
	return fmt.Sprintf("listen %s filter %s", l.Local, l.Filter)
}

// ErrAddrInUse is returned when binding a (local, filter) pair that is
// already bound.
var ErrAddrInUse = errors.New("netsim: address already in use")

// Demux is the kernel's listening-socket demultiplexer, extended with the
// paper's filter semantics: several sockets may share one local
// <address, port> as long as their <template, mask> filters differ, and
// an incoming SYN is assigned to the socket with the most specific
// matching filter (§4.8).
type Demux struct {
	listeners []*Listener
}

// Add binds a listener. It fails if an identical (local, filter) binding
// exists.
func (d *Demux) Add(l *Listener) error {
	if err := l.Filter.Validate(); err != nil {
		return err
	}
	for _, x := range d.listeners {
		if x.Local == l.Local && x.Filter == l.Filter {
			return fmt.Errorf("%w: %s", ErrAddrInUse, l)
		}
	}
	d.listeners = append(d.listeners, l)
	return nil
}

// Remove unbinds a listener; unknown listeners are ignored.
func (d *Demux) Remove(l *Listener) {
	for i, x := range d.listeners {
		if x == l {
			d.listeners = append(d.listeners[:i], d.listeners[i+1:]...)
			return
		}
	}
}

// Match returns the listener for a SYN from src to dst: the most specific
// matching filter among sockets bound to the destination endpoint, or nil
// when no socket matches. Earlier bindings win ties, deterministically.
func (d *Demux) Match(dst Addr, src IP) *Listener {
	var best *Listener
	for _, l := range d.listeners {
		if l.Local.Port != dst.Port {
			continue
		}
		if l.Local.IP != 0 && l.Local.IP != dst.IP {
			continue
		}
		if !l.Filter.Matches(src) {
			continue
		}
		if best == nil || l.Filter.Specificity() > best.Filter.Specificity() {
			best = l
		}
	}
	return best
}

// Len returns the number of bound listeners.
func (d *Demux) Len() int { return len(d.listeners) }
