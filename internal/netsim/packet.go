package netsim

import "fmt"

// PacketKind classifies inbound packets by the protocol work they need.
type PacketKind int

const (
	// SYN is a connection request to a listening socket.
	SYN PacketKind = iota
	// Data carries an HTTP request (or request continuation) on an
	// established connection.
	Data
	// FIN tears an established connection down.
	FIN
)

// String names the packet kind.
func (k PacketKind) String() string {
	switch k {
	case SYN:
		return "SYN"
	case Data:
		return "DATA"
	case FIN:
		return "FIN"
	default:
		return fmt.Sprintf("PacketKind(%d)", int(k))
	}
}

// Packet is one inbound network packet as seen by the server's NIC.
// Outbound (response) traffic is modeled as send-side CPU cost plus a
// delivery callback, so it needs no packet descriptor.
type Packet struct {
	Kind PacketKind
	Src  Addr
	Dst  Addr
	// Size in bytes, for byte accounting.
	Size int
	// ConnID identifies the established connection for Data/FIN packets.
	ConnID uint64
	// Payload carries protocol-specific request data (e.g. an HTTP
	// request descriptor) opaque to the network layer.
	Payload any
	// Bogus marks a SYN that will never complete a handshake (a
	// SYN-flood packet, §5.7). The kernel cannot tell until it has paid
	// the processing cost; the flag only controls what happens after.
	Bogus bool
}

// String summarizes the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s conn=%d %dB", p.Kind, p.Src, p.Dst, p.ConnID, p.Size)
}
