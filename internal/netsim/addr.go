// Package netsim provides the network building blocks of the simulated
// kernel: IPv4 addressing, the paper's new sockaddr namespace with CIDR
// filters (§4.8), listener demultiplexing, bounded protocol queues, and
// packet descriptors. It is pure data structure and policy — the kernel
// (internal/kernel) supplies timing, costs and interrupt behaviour.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netsim: bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("netsim: bad IPv4 octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP for constant addresses; it panics on error.
// This is a documented programmer-error guard: use it only for string
// literals (test fixtures, experiment topology constants), where a parse
// failure means a typo that should fail loudly at startup. Anything
// parsing configuration or other runtime input must call ParseIP and
// handle the error.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String formats the address as a dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Addr is a transport endpoint.
type Addr struct {
	IP   IP
	Port uint16
}

// String formats the endpoint as ip:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }
